//! TFHE/FHEW-style single-value LWE encryption.
//!
//! Encrypts one integer modulo `t` per ciphertext as `(a, b) ∈ Z_q^{n+1}`
//! with `b = ⟨a, s⟩ + Δ·m + e`, `Δ = q/t`. Supports homomorphic addition
//! and small-scalar multiplication — the single-value counterpart to
//! CKKS in the paper's design-space study (Table I / Fig. 4).
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_fhe::lwe::LweContext;
//! use rhychee_fhe::params::LweParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = LweContext::new(LweParams::tfhe1())?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let sk = ctx.generate_key(&mut rng);
//! let ct = ctx.encrypt(&sk, 5, &mut rng)?;
//! assert_eq!(ctx.decrypt(&sk, &ct), 5);
//! # Ok(())
//! # }
//! ```

use rand::Rng;
use rhychee_telemetry as telemetry;

use crate::bitpack::{BitReader, BitWriter};
use crate::error::FheError;
use crate::params::LweParams;
use crate::sampling::{binary_vec, discrete_gaussian};

/// LWE evaluation context.
#[derive(Debug, Clone)]
pub struct LweContext {
    params: LweParams,
}

/// An LWE secret key: a binary vector of length `n`.
#[derive(Debug, Clone)]
pub struct LweSecretKey {
    s: Vec<u64>,
}

impl LweSecretKey {
    /// The secret bits (used by the bootstrapping key generator).
    pub fn bits(&self) -> &[u64] {
        &self.s
    }
}

/// An LWE ciphertext `(a, b)` encrypting one value modulo `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweCiphertext {
    a: Vec<u64>,
    b: u64,
}

impl LweCiphertext {
    /// Views the mask vector and body.
    pub fn components(&self) -> (&[u64], u64) {
        (&self.a, self.b)
    }

    /// Assembles a ciphertext from raw components (used by the
    /// bootstrapping pipeline; values must already be reduced mod q).
    pub fn from_components(a: Vec<u64>, b: u64) -> Self {
        LweCiphertext { a, b }
    }
}

impl LweContext {
    /// Creates a context after validating `params`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if the parameters are invalid.
    pub fn new(params: LweParams) -> Result<Self, FheError> {
        params.validate()?;
        Ok(LweContext { params })
    }

    /// The parameter set of this context.
    pub fn params(&self) -> &LweParams {
        &self.params
    }

    /// Generates a binary secret key.
    pub fn generate_key<R: Rng + ?Sized>(&self, rng: &mut R) -> LweSecretKey {
        LweSecretKey { s: binary_vec(rng, self.params.dimension) }
    }

    /// Encrypts a message in `[0, t)`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::MessageOutOfRange`] if `m ≥ t`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        sk: &LweSecretKey,
        m: u64,
        rng: &mut R,
    ) -> Result<LweCiphertext, FheError> {
        let t = self.params.plaintext_modulus;
        if m >= t {
            return Err(FheError::MessageOutOfRange { value: m as i64, modulus: t });
        }
        let _t = telemetry::timer("fhe.lwe.encrypt");
        telemetry::count("fhe.lwe.encrypt.count", 1);
        let q = self.params.q();
        let a: Vec<u64> = (0..self.params.dimension).map(|_| rng.gen_range(0..q)).collect();
        let inner: u64 =
            a.iter().zip(&sk.s).map(|(&ai, &si)| ai.wrapping_mul(si)).fold(0u64, u64::wrapping_add)
                % q;
        let e = discrete_gaussian(rng, self.params.sigma_int);
        let e_mod = e.rem_euclid(q as i64) as u64;
        let b = (inner + self.params.delta() * m + e_mod) % q;
        Ok(LweCiphertext { a, b })
    }

    /// Decrypts to the message in `[0, t)`, rounding away the noise.
    pub fn decrypt(&self, sk: &LweSecretKey, ct: &LweCiphertext) -> u64 {
        let _t = telemetry::timer("fhe.lwe.decrypt");
        telemetry::count("fhe.lwe.decrypt.count", 1);
        let q = self.params.q();
        let t = self.params.plaintext_modulus;
        let inner: u64 =
            ct.a.iter()
                .zip(&sk.s)
                .map(|(&ai, &si)| ai.wrapping_mul(si))
                .fold(0u64, u64::wrapping_add)
                % q;
        let phase = (ct.b + q - inner) % q;
        // Round to the nearest multiple of Δ.
        let delta = self.params.delta();
        ((phase + delta / 2) / delta) % t
    }

    /// Homomorphic addition modulo q (plaintexts add modulo t).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if dimensions mismatch.
    pub fn add(&self, x: &LweCiphertext, y: &LweCiphertext) -> Result<LweCiphertext, FheError> {
        if x.a.len() != y.a.len() {
            return Err(FheError::InvalidParams("ciphertext dimension mismatch".into()));
        }
        telemetry::count("fhe.lwe.add", 1);
        let q = self.params.q();
        let a = x.a.iter().zip(&y.a).map(|(&u, &v)| (u + v) % q).collect();
        Ok(LweCiphertext { a, b: (x.b + y.b) % q })
    }

    /// In-place homomorphic addition (`acc += ct`).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if dimensions mismatch.
    pub fn add_assign(&self, acc: &mut LweCiphertext, ct: &LweCiphertext) -> Result<(), FheError> {
        if acc.a.len() != ct.a.len() {
            return Err(FheError::InvalidParams("ciphertext dimension mismatch".into()));
        }
        telemetry::count("fhe.lwe.add", 1);
        let q = self.params.q();
        for (u, &v) in acc.a.iter_mut().zip(&ct.a) {
            *u = (*u + v) % q;
        }
        acc.b = (acc.b + ct.b) % q;
        Ok(())
    }

    /// Multiplies the plaintext by a small non-negative integer scalar.
    ///
    /// Noise grows linearly in `k`; callers must keep `k · m < t`.
    pub fn mul_scalar(&self, ct: &LweCiphertext, k: u64) -> LweCiphertext {
        telemetry::count("fhe.lwe.mul_scalar", 1);
        let q = self.params.q();
        let kq = k % q;
        let a =
            ct.a.iter()
                .map(|&ai| (u128::from(ai) * u128::from(kq) % u128::from(q)) as u64)
                .collect();
        let b = (u128::from(ct.b) * u128::from(kq) % u128::from(q)) as u64;
        LweCiphertext { a, b }
    }

    /// Switches a ciphertext to a smaller modulus `q' = 2^log_q_new`,
    /// rounding each component. Plaintext is preserved; noise picks up a
    /// rounding term.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if `log_q_new` is not smaller
    /// than the current modulus or too small to hold the plaintext.
    pub fn modulus_switch(
        &self,
        ct: &LweCiphertext,
        log_q_new: u32,
    ) -> Result<(LweCiphertext, LweParams), FheError> {
        let p = &self.params;
        if log_q_new >= p.log_q {
            return Err(FheError::InvalidParams(format!(
                "target modulus 2^{log_q_new} is not smaller than 2^{}",
                p.log_q
            )));
        }
        let t_bits = 64 - (p.plaintext_modulus - 1).leading_zeros();
        if log_q_new < t_bits + 2 {
            return Err(FheError::InvalidParams(format!(
                "target modulus 2^{log_q_new} leaves no room above t = {}",
                p.plaintext_modulus
            )));
        }
        let shift = p.log_q - log_q_new;
        let round = |x: u64| -> u64 { (x + (1 << (shift - 1))) >> shift };
        let q_new = 1u64 << log_q_new;
        let a = ct.a.iter().map(|&ai| round(ai) % q_new).collect();
        let b = round(ct.b) % q_new;
        let new_params = LweParams { log_q: log_q_new, ..*p };
        Ok((LweCiphertext { a, b }, new_params))
    }

    /// Serializes with exact `log q`-bit packing, matching the
    /// `(n+1)·log q` size accounting of Table I.
    pub fn serialize(&self, ct: &LweCiphertext) -> Vec<u8> {
        let bits = self.params.log_q;
        let mut w = BitWriter::new();
        for &ai in &ct.a {
            w.write_bits(ai, bits);
        }
        w.write_bits(ct.b, bits);
        w.into_bytes()
    }

    /// Exact serialized size in bytes of one ciphertext:
    /// `⌈(n+1)·log q / 8⌉`.
    pub fn serialized_len(&self) -> usize {
        ((self.params.dimension + 1) * self.params.log_q as usize).div_ceil(8)
    }

    /// Deserializes a ciphertext produced by [`LweContext::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] if the byte length does not
    /// match [`LweContext::serialized_len`] (truncated or oversized
    /// input).
    pub fn deserialize(&self, bytes: &[u8]) -> Result<LweCiphertext, FheError> {
        let expected = self.serialized_len();
        if bytes.len() != expected {
            return Err(FheError::Deserialize(format!(
                "{} bytes for an LWE ciphertext, expected {expected}",
                bytes.len()
            )));
        }
        let bits = self.params.log_q;
        let mut r = BitReader::new(bytes);
        let a = (0..self.params.dimension)
            .map(|_| r.read_bits(bits))
            .collect::<Result<Vec<u64>, _>>()?;
        let b = r.read_bits(bits)?;
        Ok(LweCiphertext { a, b })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (LweContext, LweSecretKey, StdRng) {
        let ctx = LweContext::new(LweParams::tfhe1()).expect("valid params");
        let mut rng = StdRng::seed_from_u64(31);
        let sk = ctx.generate_key(&mut rng);
        (ctx, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_all_messages() {
        let (ctx, sk, mut rng) = setup();
        for m in 0..ctx.params().plaintext_modulus {
            let ct = ctx.encrypt(&sk, m, &mut rng).expect("encrypt");
            assert_eq!(ctx.decrypt(&sk, &ct), m, "message {m}");
        }
    }

    #[test]
    fn message_out_of_range_rejected() {
        let (ctx, sk, mut rng) = setup();
        let t = ctx.params().plaintext_modulus;
        assert!(matches!(ctx.encrypt(&sk, t, &mut rng), Err(FheError::MessageOutOfRange { .. })));
    }

    #[test]
    fn homomorphic_addition_mod_t() {
        let (ctx, sk, mut rng) = setup();
        let t = ctx.params().plaintext_modulus;
        for (x, y) in [(1u64, 2u64), (7, 8), (15, 15), (0, 0)] {
            let cx = ctx.encrypt(&sk, x, &mut rng).expect("encrypt");
            let cy = ctx.encrypt(&sk, y, &mut rng).expect("encrypt");
            let sum = ctx.add(&cx, &cy).expect("add");
            assert_eq!(ctx.decrypt(&sk, &sum), (x + y) % t);
        }
    }

    #[test]
    fn aggregation_of_many_clients() {
        // Sum 50 fresh encryptions of 0/1 votes — inside the noise budget
        // computed by LweParams::max_additions.
        let (ctx, sk, mut rng) = setup();
        assert!(ctx.params().max_additions() >= 50);
        let votes: Vec<u64> = (0..50).map(|i| u64::from(i % 3 == 0)).collect();
        let expected: u64 = votes.iter().sum::<u64>() % ctx.params().plaintext_modulus;
        let mut acc = ctx.encrypt(&sk, votes[0], &mut rng).expect("encrypt");
        for &v in &votes[1..] {
            let ct = ctx.encrypt(&sk, v, &mut rng).expect("encrypt");
            ctx.add_assign(&mut acc, &ct).expect("add");
        }
        assert_eq!(ctx.decrypt(&sk, &acc), expected);
    }

    #[test]
    fn scalar_multiplication() {
        let (ctx, sk, mut rng) = setup();
        let ct = ctx.encrypt(&sk, 3, &mut rng).expect("encrypt");
        let ct4 = ctx.mul_scalar(&ct, 4);
        assert_eq!(ctx.decrypt(&sk, &ct4), 12);
        let ct0 = ctx.mul_scalar(&ct, 0);
        assert_eq!(ctx.decrypt(&sk, &ct0), 0);
    }

    #[test]
    fn modulus_switch_preserves_plaintext() {
        // Use a larger modulus so there is room to switch down.
        let params = LweParams { log_q: 20, ..LweParams::tfhe1() };
        let ctx = LweContext::new(params).expect("valid");
        let mut rng = StdRng::seed_from_u64(5);
        let sk = ctx.generate_key(&mut rng);
        for m in [0u64, 3, 9, 15] {
            let ct = ctx.encrypt(&sk, m, &mut rng).expect("encrypt");
            let (ct2, p2) = ctx.modulus_switch(&ct, 12).expect("switch");
            let ctx2 = LweContext::new(p2).expect("valid");
            assert_eq!(ctx2.decrypt(&sk, &ct2), m, "message {m}");
        }
    }

    #[test]
    fn modulus_switch_rejects_bad_targets() {
        let (ctx, sk, mut rng) = setup();
        let ct = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
        assert!(ctx.modulus_switch(&ct, 10).is_err()); // not smaller
        assert!(ctx.modulus_switch(&ct, 4).is_err()); // no room above t = 16
    }

    #[test]
    fn serialization_round_trip_and_size() {
        let (ctx, sk, mut rng) = setup();
        let ct = ctx.encrypt(&sk, 7, &mut rng).expect("encrypt");
        let bytes = ctx.serialize(&ct);
        // (n + 1) * log q bits = 535 * 10 = 5350 bits = 669 bytes.
        assert_eq!(bytes.len(), (535 * 10usize).div_ceil(8));
        assert_eq!(bytes.len() as u64 * 8 / 8, ctx.params().ciphertext_bits().div_ceil(8));
        let back = ctx.deserialize(&bytes).expect("deserialize");
        assert_eq!(ctx.decrypt(&sk, &back), 7);
        assert_eq!(bytes.len(), ctx.serialized_len());
    }

    #[test]
    fn deserialize_rejects_wrong_length() {
        let (ctx, sk, mut rng) = setup();
        let ct = ctx.encrypt(&sk, 3, &mut rng).expect("encrypt");
        let mut bytes = ctx.serialize(&ct);
        assert!(ctx.deserialize(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        bytes.push(0);
        assert!(ctx.deserialize(&bytes).is_err(), "trailing garbage");
        assert!(ctx.deserialize(&[]).is_err(), "empty");
    }

    #[test]
    fn bit_flip_corrupts_decryption_sometimes() {
        // A flip in a high-order bit of b shifts the phase by q/2 —
        // guaranteed corruption.
        let (ctx, sk, mut rng) = setup();
        let ct = ctx.encrypt(&sk, 2, &mut rng).expect("encrypt");
        let mut bytes = ctx.serialize(&ct);
        let total_bits = 535 * 10;
        let b_msb_bit = total_bits - 1; // last bit = MSB of b
        bytes[b_msb_bit / 8] ^= 1 << (b_msb_bit % 8);
        let corrupted = ctx.deserialize(&bytes).expect("parseable");
        assert_ne!(ctx.decrypt(&sk, &corrupted), 2);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (ctx, sk, mut rng) = setup();
        let ctx2 = LweContext::new(LweParams::tfhe3()).expect("valid");
        let sk2 = ctx2.generate_key(&mut rng);
        let x = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
        let y = ctx2.encrypt(&sk2, 1, &mut rng).expect("encrypt");
        assert!(ctx.add(&x, &y).is_err());
    }
}
