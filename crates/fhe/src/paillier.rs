//! Paillier additively homomorphic encryption.
//!
//! The partially homomorphic scheme used by PFMLP, the baseline in the
//! paper's Table II comparison. Supports encryption, decryption,
//! ciphertext addition (plaintext addition) and plaintext-scalar
//! multiplication. Decryption uses the CRT speed-up over the key's prime
//! factors.
//!
//! Fixed-point reals are handled by [`PaillierContext::encrypt_f64`] /
//! [`PaillierContext::decrypt_f64`], mapping negative values to the upper
//! half of the message space.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_fhe::paillier::PaillierContext;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! // 256-bit keys are for doctests only; use >= 2048 bits in practice.
//! let ctx = PaillierContext::generate(&mut rng, 256)?;
//! let c1 = ctx.encrypt_u64(20, &mut rng);
//! let c2 = ctx.encrypt_u64(22, &mut rng);
//! let sum = ctx.add(&c1, &c2);
//! assert_eq!(ctx.decrypt_u64(&sum)?, 42);
//! # Ok(())
//! # }
//! ```

use rand::Rng;

use rhychee_bigint::{gen_prime, mod_inv, BigUint, Montgomery};

use crate::error::FheError;

/// Default fixed-point scale for real-valued model weights (2^32).
const F64_SCALE: f64 = 4294967296.0;

/// A Paillier key pair plus precomputed decryption constants.
///
/// The public key is `n` (with generator `g = n + 1`); the private
/// material is the factorization `(p, q)` with CRT constants.
#[derive(Debug, Clone)]
pub struct PaillierContext {
    n: BigUint,
    n_squared: BigUint,
    half_n: BigUint,
    mont_n2: Montgomery,
    /// λ = lcm(p−1, q−1).
    lambda: BigUint,
    /// μ = (L(g^λ mod n²))⁻¹ mod n.
    mu: BigUint,
    /// CRT decryption constants over the prime factors (~4× faster than
    /// the direct λ-exponentiation mod n²).
    crt: CrtDecrypt,
}

/// Precomputed constants for CRT Paillier decryption.
#[derive(Debug, Clone)]
struct CrtDecrypt {
    p: BigUint,
    q: BigUint,
    p_squared: Montgomery,
    q_squared: Montgomery,
    /// h_p = L_p(g^{p−1} mod p²)^{-1} mod p.
    h_p: BigUint,
    /// h_q = L_q(g^{q−1} mod q²)^{-1} mod q.
    h_q: BigUint,
    /// q^{-1} mod p for Garner recombination.
    q_inv_p: BigUint,
}

impl CrtDecrypt {
    fn new(p: BigUint, q: BigUint, n: &BigUint) -> Option<Self> {
        let one = BigUint::one();
        let p2 = &p * &p;
        let q2 = &q * &q;
        let p_squared = Montgomery::new(p2.clone());
        let q_squared = Montgomery::new(q2.clone());
        // g = n + 1, so g^{p-1} mod p² = 1 + (p-1)·n mod p² (binomial).
        let gp = (&one + &((&p - &one) * n)).rem_of(&p2);
        let gq = (&one + &((&q - &one) * n)).rem_of(&q2);
        let l_p = |x: &BigUint| (x - &one).div_rem(&p).0;
        let l_q = |x: &BigUint| (x - &one).div_rem(&q).0;
        let h_p = mod_inv(&l_p(&gp).rem_of(&p), &p)?;
        let h_q = mod_inv(&l_q(&gq).rem_of(&q), &q)?;
        let q_inv_p = mod_inv(&q.rem_of(&p), &p)?;
        Some(CrtDecrypt { p, q, p_squared, q_squared, h_p, h_q, q_inv_p })
    }

    /// Decrypts via the two prime-power subgroups and Garner's formula.
    fn decrypt(&self, ct: &BigUint) -> BigUint {
        let one = BigUint::one();
        let exp_p = &self.p - &one;
        let exp_q = &self.q - &one;
        let up = self.p_squared.pow(&ct.rem_of(self.p_squared.modulus()), &exp_p);
        let uq = self.q_squared.pow(&ct.rem_of(self.q_squared.modulus()), &exp_q);
        let m_p = ((up - &one).div_rem(&self.p).0 * &self.h_p).rem_of(&self.p);
        let m_q = ((uq - &one).div_rem(&self.q).0 * &self.h_q).rem_of(&self.q);
        // Garner: m = m_q + q * ((m_p - m_q) * q^{-1} mod p).
        let diff = if m_p >= m_q.rem_of(&self.p) {
            &m_p - &m_q.rem_of(&self.p)
        } else {
            &self.p - &(&m_q.rem_of(&self.p) - &m_p)
        };
        let t = (&diff * &self.q_inv_p).rem_of(&self.p);
        m_q + &(&self.q * &t)
    }
}

/// A Paillier ciphertext (an element of `Z_{n²}^*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Serialized big-endian byte representation.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Size of this ciphertext in bits.
    pub fn bits(&self) -> usize {
        self.0.bits()
    }
}

impl PaillierContext {
    /// Generates a key pair with an `n` of `modulus_bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if `modulus_bits < 64` or odd.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Result<Self, FheError> {
        if modulus_bits < 64 || !modulus_bits.is_multiple_of(2) {
            return Err(FheError::InvalidParams(format!(
                "Paillier modulus must be an even bit count >= 64, got {modulus_bits}"
            )));
        }
        let half = modulus_bits / 2;
        let (p, q) = loop {
            let p = gen_prime(rng, half);
            let q = gen_prime(rng, half);
            if p != q {
                break (p, q);
            }
        };
        let n = &p * &q;
        let n_squared = &n * &n;
        let one = BigUint::one();
        let lambda = (&p - &one).lcm(&(&q - &one));
        let mont_n2 = Montgomery::new(n_squared.clone());
        // g = n + 1, so g^λ mod n² = 1 + λ·n (binomial), hence
        // L(g^λ) = λ mod n and μ = λ⁻¹ mod n.
        let mu = mod_inv(&lambda.rem_of(&n), &n)
            .ok_or_else(|| FheError::InvalidParams("λ not invertible mod n".into()))?;
        let crt = CrtDecrypt::new(p, q, &n)
            .ok_or_else(|| FheError::InvalidParams("CRT constants not invertible".into()))?;
        let half_n = &n >> 1;
        Ok(PaillierContext { n, n_squared, half_n, mont_n2, lambda, mu, crt })
    }

    /// The public modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Size of one ciphertext in bits (`2 · |n|`).
    pub fn ciphertext_bits(&self) -> usize {
        self.n.bits() * 2
    }

    /// Encrypts a non-negative integer `m < n`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n` (callers encrypting model weights go through
    /// the checked fixed-point API).
    pub fn encrypt(&self, m: &BigUint, rng: &mut (impl Rng + ?Sized)) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext must be below the modulus");
        // c = (1 + m·n) · r^n mod n², using g = n + 1.
        let r = loop {
            let r = BigUint::random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                break r;
            }
        };
        let gm = (BigUint::one() + m * &self.n).rem_of(&self.n_squared);
        let rn = self.mont_n2.pow(&r, &self.n);
        PaillierCiphertext(self.mont_n2.mul(&gm, &rn))
    }

    /// Encrypts a `u64`.
    pub fn encrypt_u64(&self, m: u64, rng: &mut (impl Rng + ?Sized)) -> PaillierCiphertext {
        self.encrypt(&BigUint::from(m), rng)
    }

    /// Decrypts to the integer plaintext in `[0, n)`.
    ///
    /// Uses CRT decryption over the key's prime factors (~4× faster than
    /// the direct λ-exponentiation).
    pub fn decrypt(&self, ct: &PaillierCiphertext) -> BigUint {
        self.crt.decrypt(&ct.0)
    }

    /// Textbook (non-CRT) decryption: `m = L(c^λ mod n²) · μ mod n` with
    /// `L(u) = (u − 1)/n`. Kept as a cross-check oracle for the CRT path.
    pub fn decrypt_direct(&self, ct: &PaillierCiphertext) -> BigUint {
        let u = self.mont_n2.pow(&ct.0, &self.lambda);
        let l = (&u - &BigUint::one()).div_rem(&self.n).0;
        (l * &self.mu).rem_of(&self.n)
    }

    /// Decrypts to a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::MessageOutOfRange`] if the plaintext exceeds
    /// `u64::MAX`.
    pub fn decrypt_u64(&self, ct: &PaillierCiphertext) -> Result<u64, FheError> {
        let m = self.decrypt(ct);
        u64::try_from(&m)
            .map_err(|()| FheError::MessageOutOfRange { value: i64::MAX, modulus: u64::MAX })
    }

    /// Encrypts a real value at fixed-point scale 2^32.
    ///
    /// Negative values map to the upper half of `Z_n` (two's-complement
    /// style), so homomorphic sums of mixed-sign values decode correctly
    /// as long as magnitudes stay below `n / 2^34`.
    pub fn encrypt_f64(&self, v: f64, rng: &mut (impl Rng + ?Sized)) -> PaillierCiphertext {
        let scaled = (v * F64_SCALE).round();
        let m = if scaled >= 0.0 {
            Self::biguint_from_f64(scaled)
        } else {
            &self.n - &Self::biguint_from_f64(-scaled)
        };
        self.encrypt(&m.rem_of(&self.n), rng)
    }

    /// Decrypts a fixed-point real encrypted with
    /// [`PaillierContext::encrypt_f64`].
    pub fn decrypt_f64(&self, ct: &PaillierCiphertext) -> f64 {
        let m = self.decrypt(ct);
        if m > self.half_n {
            -(Self::biguint_to_f64(&(&self.n - &m)) / F64_SCALE)
        } else {
            Self::biguint_to_f64(&m) / F64_SCALE
        }
    }

    /// Homomorphic addition: `Dec(add(c1, c2)) = m1 + m2 mod n`.
    pub fn add(&self, c1: &PaillierCiphertext, c2: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(self.mont_n2.mul(&c1.0, &c2.0))
    }

    /// Homomorphic plaintext multiplication: `Dec(mul(c, k)) = k·m mod n`.
    pub fn mul_scalar(&self, c: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(self.mont_n2.pow(&c.0, k))
    }

    fn biguint_from_f64(v: f64) -> BigUint {
        debug_assert!(v >= 0.0 && v.is_finite());
        if v < 1.8446744073709552e19 {
            BigUint::from(v as u64)
        } else {
            // Decompose into 32-bit chunks (model weights never get here,
            // but completeness is cheap).
            let hi = (v / 4294967296.0).floor();
            Self::biguint_from_f64(hi) * BigUint::from(1u64 << 32)
                + BigUint::from((v % 4294967296.0) as u64)
        }
    }

    fn biguint_to_f64(v: &BigUint) -> f64 {
        let mut acc = 0.0f64;
        for &limb in v.limbs().iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ctx() -> (PaillierContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let ctx = PaillierContext::generate(&mut rng, 256).expect("keygen");
        (ctx, rng)
    }

    #[test]
    fn encrypt_decrypt_integers() {
        let (ctx, mut rng) = ctx();
        for m in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            let ct = ctx.encrypt_u64(m, &mut rng);
            assert_eq!(ctx.decrypt_u64(&ct).expect("fits"), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (ctx, mut rng) = ctx();
        let c1 = ctx.encrypt_u64(5, &mut rng);
        let c2 = ctx.encrypt_u64(5, &mut rng);
        assert_ne!(c1, c2, "probabilistic encryption");
        assert_eq!(ctx.decrypt_u64(&c1).unwrap(), ctx.decrypt_u64(&c2).unwrap());
    }

    #[test]
    fn homomorphic_addition() {
        let (ctx, mut rng) = ctx();
        let c1 = ctx.encrypt_u64(1234, &mut rng);
        let c2 = ctx.encrypt_u64(8766, &mut rng);
        assert_eq!(ctx.decrypt_u64(&ctx.add(&c1, &c2)).unwrap(), 10_000);
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let (ctx, mut rng) = ctx();
        let c = ctx.encrypt_u64(111, &mut rng);
        let c3 = ctx.mul_scalar(&c, &BigUint::from(3u64));
        assert_eq!(ctx.decrypt_u64(&c3).unwrap(), 333);
    }

    #[test]
    fn fixed_point_reals_round_trip() {
        let (ctx, mut rng) = ctx();
        for v in [0.0f64, 1.5, -2.75, 1e-6, -1e-6, 12345.678, -99999.25] {
            let ct = ctx.encrypt_f64(v, &mut rng);
            let back = ctx.decrypt_f64(&ct);
            assert!((back - v).abs() < 1e-6, "{v} vs {back}");
        }
    }

    #[test]
    fn fixed_point_sums_with_mixed_signs() {
        let (ctx, mut rng) = ctx();
        let values = [0.5f64, -1.25, 3.0, -0.125, 2.5];
        let expected: f64 = values.iter().sum();
        let mut acc = ctx.encrypt_f64(values[0], &mut rng);
        for &v in &values[1..] {
            acc = ctx.add(&acc, &ctx.encrypt_f64(v, &mut rng));
        }
        assert!((ctx.decrypt_f64(&acc) - expected).abs() < 1e-6);
    }

    #[test]
    fn federated_average_pattern() {
        // Sum then scalar-divide happens in plaintext after decryption for
        // Paillier (no fractional scalars); PFMLP sums and divides client-side.
        let (ctx, mut rng) = ctx();
        let clients = 8u64;
        let mut acc = ctx.encrypt_f64(0.25, &mut rng);
        for _ in 1..clients {
            acc = ctx.add(&acc, &ctx.encrypt_f64(0.25, &mut rng));
        }
        let total = ctx.decrypt_f64(&acc);
        assert!((total / clients as f64 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ciphertext_size_is_twice_modulus() {
        let (ctx, mut rng) = ctx();
        assert_eq!(ctx.ciphertext_bits(), 512);
        let ct = ctx.encrypt_u64(1, &mut rng);
        assert!(ct.bits() <= 512);
        assert!(!ct.to_bytes_be().is_empty());
    }

    #[test]
    fn crt_decryption_matches_direct() {
        let (ctx, mut rng) = ctx();
        for m in [0u64, 1, 999_999_999, u64::MAX] {
            let ct = ctx.encrypt_u64(m, &mut rng);
            assert_eq!(ctx.decrypt(&ct), ctx.decrypt_direct(&ct), "m = {m}");
        }
    }

    #[test]
    fn keygen_rejects_bad_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(PaillierContext::generate(&mut rng, 32).is_err());
        assert!(PaillierContext::generate(&mut rng, 129).is_err());
    }
}
