//! Homomorphic encryption substrates for Rhychee-FL.
//!
//! Implements, from scratch, the three cryptosystems the paper evaluates:
//!
//! * [`ckks`] — RNS-CKKS (SIMD-packed approximate arithmetic over reals),
//!   the scheme Rhychee-FL itself uses for encrypted model aggregation.
//! * [`lwe`] — TFHE/FHEW-style single-value LWE encryption, the
//!   alternative branch of the design-space study (Table I, Fig. 4).
//! * [`paillier`] — the Paillier cryptosystem, used by the PFMLP baseline
//!   in the Table II comparison.
//!
//! Plus supporting modules: [`params`] (the seven Table III parameter
//! sets), [`sampling`] (discrete Gaussians / ternary secrets),
//! [`bitpack`] (exact-width ciphertext wire formats) and [`error`].
//!
//! Two extensions go beyond the paper's experiments:
//!
//! * [`ckks::threshold`] — n-out-of-n threshold CKKS (distributed key
//!   generation and decryption), the architecture class of the xMK-CKKS
//!   baseline;
//! * [`tfhe_boot`] — FHEW/GINX programmable bootstrapping, realizing the
//!   "arbitrary LUT without losing integer precision" capability the
//!   paper's design-space discussion (§IV-B2) attributes to TFHE.
//!
//! # Security note
//!
//! Parameter sets are faithful to the paper and to standard 128-bit
//! security tables, but this code is a research artifact for systems
//! experiments — it has not been audited and makes no constant-time
//! claims. Do not use it to protect real data.
//!
//! # Examples
//!
//! Federated averaging over encrypted vectors (the paper's Eq. 2):
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_fhe::ckks::CkksContext;
//! use rhychee_fhe::params::CkksParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = CkksContext::new(CkksParams::toy())?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let (sk, pk) = ctx.generate_keys(&mut rng);
//!
//! // Three clients encrypt their local models.
//! let models = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
//! let mut acc = ctx.encrypt(&pk, &models[0], &mut rng)?;
//! for m in &models[1..] {
//!     let ct = ctx.encrypt(&pk, m, &mut rng)?;
//!     ctx.add_assign(&mut acc, &ct)?;
//! }
//! // The server averages without decrypting.
//! let avg = ctx.mul_scalar(&acc, 1.0 / 3.0);
//! let global = ctx.decrypt(&sk, &avg);
//! assert!((global[0] - 3.0).abs() < 1e-3);
//! assert!((global[1] - 4.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod bitpack;
pub mod ckks;
pub mod error;
pub mod lwe;
pub mod paillier;
pub mod params;
pub mod sampling;
pub mod tfhe_boot;

pub use ckks::{
    CkksCiphertext, CkksContext, CkksEncryptNoise, CkksPublicKey, CkksSecretKey, CkksSymmetricNoise,
};
pub use error::FheError;
pub use lwe::{LweCiphertext, LweContext, LweSecretKey};
pub use paillier::{PaillierCiphertext, PaillierContext};
pub use params::{CkksParams, LweParams, ParamSet};
