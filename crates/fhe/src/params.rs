//! FHE parameter sets, including the seven sets evaluated in the paper
//! (Table III). All sets meet the 128-bit security level per the
//! homomorphicencryption.org standard tables for their (N, log Q) /
//! (n, log q) combinations; this implementation is parameter-faithful but
//! has not been independently audited.

use crate::error::FheError;

/// Parameters for the RNS-CKKS scheme.
///
/// The ciphertext modulus `Q = q_0 ⋯ q_L` is described by the bit size of
/// each prime in the chain; primes are materialized as the largest
/// NTT-friendly primes (`q ≡ 1 mod 2N`) of each size when a
/// [`CkksContext`](crate::ckks::CkksContext) is built.
///
/// # Examples
///
/// ```
/// use rhychee_fhe::params::CkksParams;
///
/// let p = CkksParams::ckks4();
/// assert_eq!(p.n, 8192);
/// assert_eq!(p.log_q(), 61);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    /// Ring degree N (power of two). Slot count is N/2.
    pub n: usize,
    /// Bit size of each RNS prime, most-significant (kept) prime first.
    pub prime_bits: Vec<u32>,
    /// Scaling factor exponent: Δ = 2^scale_bits.
    pub scale_bits: u32,
    /// Error distribution standard deviation (σ = 3.2 standard).
    pub sigma: f64,
}

impl CkksParams {
    /// Paper parameter set CKKS-1: N = 32768, log Q = 160.
    pub fn ckks1() -> Self {
        CkksParams { n: 32768, prime_bits: vec![45, 40, 40, 35], scale_bits: 40, sigma: 3.2 }
    }

    /// Paper parameter set CKKS-2: N = 16384, log Q = 130.
    pub fn ckks2() -> Self {
        CkksParams { n: 16384, prime_bits: vec![50, 40, 40], scale_bits: 40, sigma: 3.2 }
    }

    /// Paper parameter set CKKS-3: N = 8192, log Q = 100.
    pub fn ckks3() -> Self {
        CkksParams { n: 8192, prime_bits: vec![40, 30, 30], scale_bits: 30, sigma: 3.2 }
    }

    /// Paper parameter set CKKS-4: N = 8192, log Q = 61 (reduced scaling
    /// factor; the set that minimizes communication in the paper).
    pub fn ckks4() -> Self {
        CkksParams { n: 8192, prime_bits: vec![61], scale_bits: 26, sigma: 3.2 }
    }

    /// A small insecure set for unit tests and examples (fast keygen).
    pub fn toy() -> Self {
        CkksParams { n: 512, prime_bits: vec![50, 40], scale_bits: 30, sigma: 3.2 }
    }

    /// Total ciphertext-modulus bits `log Q = Σ prime_bits`.
    pub fn log_q(&self) -> u32 {
        self.prime_bits.iter().sum()
    }

    /// Number of slots a single ciphertext packs (N/2).
    pub fn slot_count(&self) -> usize {
        self.n / 2
    }

    /// Size of one serialized RLWE ciphertext in bits: `2 · N · log Q`
    /// (Table I numerator).
    pub fn ciphertext_bits(&self) -> u64 {
        2 * self.n as u64 * u64::from(self.log_q())
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if the ring degree is not a
    /// power of two ≥ 8, the prime chain is empty, any prime size is
    /// outside `[20, 62]` bits, or the scale exceeds the top prime.
    pub fn validate(&self) -> Result<(), FheError> {
        if !self.n.is_power_of_two() || self.n < 8 {
            return Err(FheError::InvalidParams(format!(
                "ring degree {} must be a power of two >= 8",
                self.n
            )));
        }
        if self.prime_bits.is_empty() {
            return Err(FheError::InvalidParams("empty prime chain".into()));
        }
        if let Some(&bad) = self.prime_bits.iter().find(|&&b| !(20..=62).contains(&b)) {
            return Err(FheError::InvalidParams(format!("prime size {bad} outside [20, 62]")));
        }
        let top = *self.prime_bits.first().expect("non-empty");
        if self.scale_bits + 1 > top {
            return Err(FheError::InvalidParams(format!(
                "scale 2^{} leaves no headroom in the {top}-bit base prime",
                self.scale_bits
            )));
        }
        if self.sigma <= 0.0 {
            return Err(FheError::InvalidParams("sigma must be positive".into()));
        }
        Ok(())
    }
}

/// Parameters for the TFHE/FHEW-style LWE scheme.
///
/// # Examples
///
/// ```
/// use rhychee_fhe::params::LweParams;
///
/// let p = LweParams::tfhe1();
/// assert_eq!(p.dimension, 534);
/// assert_eq!(p.log_q, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LweParams {
    /// LWE dimension n.
    pub dimension: usize,
    /// Ciphertext modulus exponent: q = 2^log_q.
    pub log_q: u32,
    /// Plaintext modulus t (must divide q).
    pub plaintext_modulus: u64,
    /// Error standard deviation in absolute (integer) units.
    pub sigma_int: f64,
}

impl LweParams {
    /// Paper parameter set TFHE-1: n = 534, log q = 10.
    pub fn tfhe1() -> Self {
        LweParams { dimension: 534, log_q: 10, plaintext_modulus: 16, sigma_int: 0.6 }
    }

    /// Paper parameter set TFHE-2: n = 503, log q = 10.
    pub fn tfhe2() -> Self {
        LweParams { dimension: 503, log_q: 10, plaintext_modulus: 16, sigma_int: 0.6 }
    }

    /// Paper parameter set TFHE-3: n = 448, log q = 10.
    pub fn tfhe3() -> Self {
        LweParams { dimension: 448, log_q: 10, plaintext_modulus: 16, sigma_int: 0.6 }
    }

    /// Ciphertext modulus q.
    pub fn q(&self) -> u64 {
        1u64 << self.log_q
    }

    /// Scaling gap between plaintext and ciphertext modulus, q/t.
    pub fn delta(&self) -> u64 {
        self.q() / self.plaintext_modulus
    }

    /// Size of one serialized LWE ciphertext in bits: `(n + 1) · log q`
    /// (Table I numerator).
    pub fn ciphertext_bits(&self) -> u64 {
        (self.dimension as u64 + 1) * u64::from(self.log_q)
    }

    /// Upper bound on how many fresh ciphertexts can be summed before the
    /// accumulated noise risks a decryption error.
    ///
    /// Uses the 6σ tail bound: after `k` additions the noise standard
    /// deviation is `σ·√k`, and correctness requires `6·σ·√k < q/(2t)`.
    pub fn max_additions(&self) -> usize {
        let margin = self.delta() as f64 / 2.0;
        let k = (margin / (6.0 * self.sigma_int)).powi(2);
        k.floor() as usize
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] on a zero dimension, a modulus
    /// outside `[4, 32]` bits, a plaintext modulus that does not divide q,
    /// or a non-positive σ.
    pub fn validate(&self) -> Result<(), FheError> {
        if self.dimension == 0 {
            return Err(FheError::InvalidParams("LWE dimension must be positive".into()));
        }
        if !(4..=32).contains(&self.log_q) {
            return Err(FheError::InvalidParams(format!(
                "log q = {} outside supported range [4, 32]",
                self.log_q
            )));
        }
        if self.plaintext_modulus < 2 || !self.q().is_multiple_of(self.plaintext_modulus) {
            return Err(FheError::InvalidParams(format!(
                "plaintext modulus {} must be >= 2 and divide q = {}",
                self.plaintext_modulus,
                self.q()
            )));
        }
        if self.sigma_int <= 0.0 {
            return Err(FheError::InvalidParams("sigma must be positive".into()));
        }
        Ok(())
    }
}

/// One row of the paper's Table III: a named parameter set of either scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSet {
    /// A CKKS (RLWE, SIMD-packed) parameter set.
    Ckks(CkksParams),
    /// A TFHE/FHEW (LWE, single-value) parameter set.
    Tfhe(LweParams),
}

impl ParamSet {
    /// All seven paper parameter sets in Table III order.
    pub fn table3() -> Vec<(&'static str, ParamSet)> {
        vec![
            ("CKKS-1", ParamSet::Ckks(CkksParams::ckks1())),
            ("CKKS-2", ParamSet::Ckks(CkksParams::ckks2())),
            ("CKKS-3", ParamSet::Ckks(CkksParams::ckks3())),
            ("CKKS-4", ParamSet::Ckks(CkksParams::ckks4())),
            ("TFHE-1", ParamSet::Tfhe(LweParams::tfhe1())),
            ("TFHE-2", ParamSet::Tfhe(LweParams::tfhe2())),
            ("TFHE-3", ParamSet::Tfhe(LweParams::tfhe3())),
        ]
    }

    /// Communication size in bits for a model of `num_params` trainable
    /// parameters (Table I formulas).
    ///
    /// * CKKS: `⌈DL / (N/2)⌉ · 2N · log Q`
    /// * TFHE: `DL · (n + 1) · log q`
    pub fn comm_bits(&self, num_params: u64) -> u64 {
        match self {
            ParamSet::Ckks(p) => {
                let slots = p.slot_count() as u64;
                num_params.div_ceil(slots) * p.ciphertext_bits()
            }
            ParamSet::Tfhe(p) => num_params * p.ciphertext_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let sets = ParamSet::table3();
        assert_eq!(sets.len(), 7);
        let expect = [
            ("CKKS-1", 32768u64, 160u64),
            ("CKKS-2", 16384, 130),
            ("CKKS-3", 8192, 100),
            ("CKKS-4", 8192, 61),
            ("TFHE-1", 534, 10),
            ("TFHE-2", 503, 10),
            ("TFHE-3", 448, 10),
        ];
        for ((name, set), (ename, en, elogq)) in sets.iter().zip(expect) {
            assert_eq!(*name, ename);
            match set {
                ParamSet::Ckks(p) => {
                    assert_eq!(p.n as u64, en);
                    assert_eq!(u64::from(p.log_q()), elogq);
                    p.validate().expect("valid");
                }
                ParamSet::Tfhe(p) => {
                    assert_eq!(p.dimension as u64, en);
                    assert_eq!(u64::from(p.log_q), elogq);
                    p.validate().expect("valid");
                }
            }
        }
    }

    #[test]
    fn comm_bits_matches_table1_formula() {
        // HDC model: D=2000, L=10 → 20,000 parameters.
        let dl = 20_000u64;
        // CKKS-4: ceil(20000/4096) = 5 ciphertexts of 2*8192*61 bits.
        let ckks4 = ParamSet::Ckks(CkksParams::ckks4());
        assert_eq!(ckks4.comm_bits(dl), 5 * 2 * 8192 * 61);
        // TFHE-1: 20000 * 535 * 10 bits.
        let tfhe1 = ParamSet::Tfhe(LweParams::tfhe1());
        assert_eq!(tfhe1.comm_bits(dl), 20_000 * 535 * 10);
        // Paper claim: CKKS-4 is 21.4x smaller than TFHE-1 at this size.
        let ratio = tfhe1.comm_bits(dl) as f64 / ckks4.comm_bits(dl) as f64;
        assert!((ratio - 21.4).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn ckks3_to_ckks4_reduction_is_39_percent() {
        let dl = 20_000u64;
        let c3 = ParamSet::Ckks(CkksParams::ckks3()).comm_bits(dl);
        let c4 = ParamSet::Ckks(CkksParams::ckks4()).comm_bits(dl);
        let reduction = 1.0 - c4 as f64 / c3 as f64;
        assert!((reduction - 0.39).abs() < 0.01, "reduction {reduction}");
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = CkksParams::toy();
        p.n = 1000; // not a power of two
        assert!(p.validate().is_err());
        let mut p = CkksParams::toy();
        p.prime_bits.clear();
        assert!(p.validate().is_err());
        let mut p = CkksParams::toy();
        p.scale_bits = 60; // no headroom in a 50-bit prime
        assert!(p.validate().is_err());

        let mut l = LweParams::tfhe1();
        l.plaintext_modulus = 3; // does not divide 1024
        assert!(l.validate().is_err());
        let mut l = LweParams::tfhe1();
        l.dimension = 0;
        assert!(l.validate().is_err());
    }

    #[test]
    fn lwe_max_additions_is_sane() {
        let p = LweParams::tfhe1();
        // delta = 64, margin 32, sigma 0.6 → (32/3.6)^2 ≈ 79.
        let k = p.max_additions();
        assert!((50..=120).contains(&k), "k = {k}");
    }

    #[test]
    fn ckks_ciphertext_bits() {
        assert_eq!(CkksParams::ckks4().ciphertext_bits(), 2 * 8192 * 61);
        assert_eq!(CkksParams::ckks1().ciphertext_bits(), 2 * 32768 * 160);
    }
}
