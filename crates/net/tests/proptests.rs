//! Property-based tests for the wire protocol: every message type
//! round-trips through a frame, and corruption, truncation, and hostile
//! length fields are always rejected.

use proptest::prelude::*;

use rhychee_net::wire::{
    decode_frame, encode_frame, read_message, write_message, Message, DEFAULT_MAX_PAYLOAD,
    HEADER_LEN, TRAILER_LEN,
};
use rhychee_net::NetError;

/// Builds one of the six message types from drawn primitives; `kind`
/// selects the variant so the property covers the whole protocol. Ids,
/// counts, and rounds use the full `u32` wire width.
fn build_message(kind: u8, a: u32, b: u32, c: u32, flag: bool, body: Vec<u8>) -> Message {
    let (a, b, c) = (a as usize, b as usize, c as usize);
    match kind {
        0 => Message::Hello { client_id: a },
        1 => Message::Welcome { client_id: a, clients: b, rounds: c },
        2 => Message::Global { round: a, last: flag, model: body },
        3 => Message::Update { round: a, client_id: b, steps: c, model: body },
        4 => Message::UpdateAck { round: a, accepted: flag },
        _ => Message::Finished { round: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_message_round_trips(
        kind in 0u8..6,
        a in any::<u32>(),
        b in any::<u32>(),
        c in any::<u32>(),
        flag in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let msg = build_message(kind, a, b, c, flag, body);
        let frame = encode_frame(&msg);
        prop_assert!(frame.len() >= HEADER_LEN + TRAILER_LEN);
        let back = decode_frame(&frame, DEFAULT_MAX_PAYLOAD).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn streamed_messages_round_trip_in_order(
        kinds in prop::collection::vec(0u8..6, 1..8),
        a in any::<u32>(),
        flag in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let msgs: Vec<Message> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| build_message(k, a.wrapping_add(i as u32), i as u32, 3, flag, body.clone()))
            .collect();
        let mut buf = Vec::new();
        let mut total = 0;
        for msg in &msgs {
            total += write_message(&mut buf, msg).expect("write");
        }
        prop_assert_eq!(total, buf.len());
        let mut cursor = std::io::Cursor::new(buf);
        for msg in &msgs {
            let (back, _) = read_message(&mut cursor, DEFAULT_MAX_PAYLOAD).expect("read");
            prop_assert_eq!(&back, msg);
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        kind in 0u8..6,
        a in any::<u32>(),
        b in any::<u32>(),
        c in any::<u32>(),
        flag in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..512),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        // Flip one bit anywhere in the frame: the CRC (or an earlier
        // structural check — magic, version, length) must refuse it.
        let msg = build_message(kind, a, b, c, flag, body);
        let mut frame = encode_frame(&msg);
        let i = byte.index(frame.len());
        frame[i] ^= 1 << bit;
        prop_assert!(decode_frame(&frame, DEFAULT_MAX_PAYLOAD).is_err());
    }

    #[test]
    fn truncation_is_rejected(
        kind in 0u8..6,
        a in any::<u32>(),
        flag in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let msg = build_message(kind, a, 1, 2, flag, body);
        let frame = encode_frame(&msg);
        let cut = cut.index(frame.len()); // strictly shorter than the frame
        prop_assert!(decode_frame(&frame[..cut], DEFAULT_MAX_PAYLOAD).is_err());
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        prop_assert!(read_message(&mut cursor, DEFAULT_MAX_PAYLOAD).is_err());
    }

    #[test]
    fn declared_length_above_cap_is_rejected_before_allocation(
        kind in 0u8..6,
        a in any::<u32>(),
        flag in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..128),
        cap in 0u32..64,
        excess in 1u32..1_000_000,
    ) {
        // Shrink the cap below the declared length: the decoder must
        // refuse with PayloadTooLarge without reading the payload.
        let msg = build_message(kind, a, 1, 2, flag, body);
        let mut frame = encode_frame(&msg);
        let declared = cap + excess;
        frame[10..14].copy_from_slice(&declared.to_le_bytes());
        let err = decode_frame(&frame, cap).expect_err("must reject");
        prop_assert!(
            matches!(err, NetError::PayloadTooLarge { len, cap: c } if len == declared && c == cap)
        );
        let mut cursor = std::io::Cursor::new(frame);
        let err = read_message(&mut cursor, cap).expect_err("must reject");
        prop_assert!(matches!(err, NetError::PayloadTooLarge { .. }));
    }
}
