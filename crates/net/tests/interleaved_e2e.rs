//! End-to-end federations over TCP with bit-interleaved slot packing,
//! under both CKKS wire codecs.
//!
//! The interleaved layout changes what travels inside the ciphertexts
//! (several quantized coordinates per slot, aggregated by pure
//! homomorphic sum) but not the wire formats themselves — uploads must
//! ride [`CanonicalCodec`] and [`SeededCodec`] unchanged, shrink on the
//! wire versus the dense layout, and converge to the same accuracy
//! within quantization error.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rhychee_core::packing::PackingConfig;
use rhychee_core::round::{self, FedSetup};
use rhychee_core::FlConfig;
use rhychee_data::{DatasetKind, SyntheticConfig};
use rhychee_fhe::params::CkksParams;
use rhychee_net::{
    CanonicalCodec, ClientConfig, ClientPipeline, ClientReport, FlClient, FlServer, SeededCodec,
    ServerConfig, ServerPipeline, ServerReport,
};

const CLIENTS: usize = 4;
const ROUNDS: usize = 2;

fn run_federation(
    packing: PackingConfig,
    seeded: bool,
    streaming: bool,
) -> (ServerReport, Vec<ClientReport>) {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 100 }
        .generate(17)
        .expect("generate");
    let fl = FlConfig::builder()
        .clients(CLIENTS)
        .rounds(ROUNDS)
        .hd_dim(256)
        .seed(13)
        .normalize(true) // coordinates in [-1, 1]: clip = 1 is lossless
        .build()
        .expect("config");
    let FedSetup { shards, test, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let builder = ServerConfig::builder()
        .clients(CLIENTS)
        .rounds(ROUNDS)
        .model_params(num_params)
        .round_timeout(Duration::from_secs(60))
        .packing(packing)
        .streaming_aggregation(streaming);
    let builder = if seeded { builder.codec(SeededCodec) } else { builder.codec(CanonicalCodec) };
    let server = FlServer::bind(
        "127.0.0.1:0",
        builder.build().expect("server config"),
        ServerPipeline::Ckks(CkksParams::toy()),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server = thread::spawn(move || server.run());

    let mut clients = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = round::ClientLocal::new(id, shard, classes, &fl);
        let eval = (id == 0).then(|| test.clone());
        let mut config = ClientConfig::new(addr);
        config.codec = if seeded { Arc::new(SeededCodec) } else { Arc::new(CanonicalCodec) };
        config.packing = packing;
        let client = FlClient::new(
            config,
            fl.clone(),
            local,
            classes,
            eval,
            ClientPipeline::Ckks(CkksParams::toy()),
        )
        .expect("client");
        clients.push(thread::spawn(move || client.run()));
    }
    let reports: Vec<ClientReport> =
        clients.into_iter().map(|c| c.join().expect("join").expect("client run")).collect();
    (server.join().expect("join").expect("server run"), reports)
}

fn final_accuracy(reports: &[ClientReport]) -> f64 {
    reports
        .iter()
        .flat_map(|r| r.accuracies.iter())
        .filter(|(round, _)| *round == ROUNDS - 1)
        .map(|(_, acc)| *acc)
        .next()
        .expect("evaluating client reported the last round")
}

#[test]
fn interleaved_canonical_matches_dense_and_shrinks_uploads() {
    let dense = PackingConfig::dense();
    let inter = PackingConfig::interleaved(10, 1.0, CLIENTS);
    let (_, dense_reports) = run_federation(dense, false, true);
    let (_, inter_reports) = run_federation(inter, false, true);

    let acc_dense = final_accuracy(&dense_reports);
    let acc_inter = final_accuracy(&inter_reports);
    assert!((acc_dense - acc_inter).abs() < 0.08, "dense {acc_dense} vs interleaved {acc_inter}");

    // 10-bit coordinates at P = 4 pack 2 per slot: upload traffic must
    // drop by a sizable margin (headers and handshakes dilute the 2×).
    let tx_dense: u64 = dense_reports.iter().map(|r| r.bytes_tx).sum();
    let tx_inter: u64 = inter_reports.iter().map(|r| r.bytes_tx).sum();
    assert!(tx_inter * 4 < tx_dense * 3, "interleaved {tx_inter} B vs dense {tx_dense} B");
}

#[test]
fn interleaved_rides_the_seeded_codec_and_batch_path() {
    // Symmetric seed-compressed uploads + batch (non-streaming)
    // aggregation: covers `aggregate_ckks_sum` and the seeded wire
    // format carrying interleaved ciphertexts.
    let inter = PackingConfig::interleaved(10, 1.0, CLIENTS);
    let (server, reports) = run_federation(inter, true, false);
    assert_eq!(server.rounds.len(), ROUNDS);
    let acc = final_accuracy(&reports);
    assert!(acc > 0.6, "accuracy {acc}");
    for r in &reports {
        assert_eq!(r.rounds_participated, ROUNDS);
        assert!(!r.final_model.is_empty());
    }
}
