//! The federated server: accepts client connections, broadcasts the
//! global model, collects encrypted updates, and aggregates — without
//! ever holding a decryption key.
//!
//! Threading model: one blocking-I/O handler thread per connection plus
//! a coordinator (the caller's thread). Handlers receive broadcast
//! payloads over per-handler channels, **deserialize uploads on their
//! own thread** (the expensive part of receiving a CKKS payload), and
//! forward decoded events to the coordinator over a shared channel; the
//! coordinator owns all round state ([`ServerRound`]) and decides
//! acceptance, so protocol logic stays single-threaded even though I/O
//! and decoding are not. Aggregation itself fans out on the shared
//! `rhychee-par` pool at the configured [`Parallelism`]; the folded
//! model is bit-identical at every degree.
//!
//! Straggler policy: a round closes as soon as every live client has
//! reported, or at the round deadline. At the deadline the round
//! aggregates if at least `quorum` updates arrived — reweighting the
//! average over the reporting subset via [`ServerRound::weights`] — and
//! fails with [`NetError::QuorumNotReached`] otherwise. Uploads for any
//! other round (and duplicates) are NACKed with `UpdateAck { accepted:
//! false }` and never touch the aggregate.
//!
//! Streaming aggregation (the default under CKKS): instead of each
//! handler deserializing its upload and the coordinator collecting all
//! of them until quorum, handlers ship the raw payload bytes and the
//! coordinator folds each upload into the running encrypted sum the
//! moment its frame arrives, zero-copy through
//! [`WireCodec::parse_upload`] and [`StreamingAggregator`]. Handler
//! reads gate on a resident-upload permit
//! ([`ServerConfigBuilder::max_resident_uploads`]) released right after
//! the fold, so server memory is O(accumulator + permits), independent
//! of client count — late clients wait in TCP backpressure, not in
//! server buffers. The streamed sum is **bit-identical** to the batch
//! path for every arrival order; rules whose weights are unknown until
//! close ([`Aggregation::FedNova`]) and the plaintext pipeline (float
//! addition is not associative) fall back to batch automatically, and
//! [`ServerConfigBuilder::streaming_aggregation`]`(false)` selects the
//! batch reference path explicitly.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rhychee_core::packing;
use rhychee_core::round::{ClientUpdate, ServerRound};
use rhychee_core::{Aggregation, FlError, Parallelism, StreamingAggregator};
use rhychee_fhe::ckks::{CkksCiphertext, CkksContext};
use rhychee_fhe::params::CkksParams;
use rhychee_obs::{ObsHandle, ObsServer, Watchdog};
use rhychee_telemetry as telemetry;

use crate::codec::{self, CanonicalCodec, SeededCodec, WireCodec};
use crate::error::NetError;
use crate::residency::{Residency, ResidencyPermit};
use crate::wire::{self, Message, TraceContext, DEFAULT_MAX_PAYLOAD};

/// How the server transports and aggregates model payloads.
pub enum ServerPipeline {
    /// Plaintext `f32` parameters, plain FedAvg.
    Plaintext,
    /// Packed CKKS ciphertexts, homomorphic FedAvg. The server builds
    /// only the evaluation context from these parameters — key
    /// generation happens client-side and no key ever reaches here.
    /// The wire format is the config's [`WireCodec`]
    /// ([`ServerConfigBuilder::codec`]; canonical by default).
    Ckks(CkksParams),
    /// Like [`ServerPipeline::Ckks`], but forcing the seed-compressed
    /// wire format regardless of the configured codec.
    #[deprecated(
        since = "0.1.0",
        note = "use `Ckks` with `ServerConfig::builder().codec(SeededCodec)` instead"
    )]
    CkksSeeded(CkksParams),
}

/// Server-side run configuration.
///
/// Built with [`ServerConfig::builder`], mirroring
/// [`FlConfig::builder`](rhychee_core::FlConfig::builder): every knob is
/// set through the builder and checked once in
/// [`ServerConfigBuilder::build`], so a constructed config is always
/// valid.
///
/// ```
/// use rhychee_net::ServerConfig;
///
/// let cfg = ServerConfig::builder()
///     .clients(4)
///     .rounds(3)
///     .model_params(1024)
///     .quorum(3)
///     .build()
///     .expect("valid server config");
/// assert_eq!(cfg.quorum(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    clients: usize,
    quorum: usize,
    rounds: usize,
    model_params: usize,
    aggregation: Aggregation,
    io_timeout: Duration,
    round_timeout: Duration,
    accept_timeout: Duration,
    max_payload: u32,
    parallelism: Parallelism,
    obs_addr: Option<String>,
    allow_rejoin: bool,
    codec: Arc<dyn WireCodec>,
    packing: packing::PackingConfig,
    streaming: bool,
    max_resident_uploads: usize,
    watchdog_multiple: f64,
    flight_dump_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// Starts a builder with loopback defaults: full quorum, 5 s I/O
    /// timeout, 30 s round and accept windows, automatic parallelism.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }

    /// Clients expected to connect.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Minimum updates required to close a round at the deadline.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Aggregation rounds to run.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Trainable parameter count `D × L` (payload caps, zero init).
    pub fn model_params(&self) -> usize {
        self.model_params
    }

    /// Aggregation rule (weights over the reporting quorum).
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Socket write / handshake-read timeout.
    pub fn io_timeout(&self) -> Duration {
        self.io_timeout
    }

    /// Collection window per round.
    pub fn round_timeout(&self) -> Duration {
        self.round_timeout
    }

    /// How long to wait for all clients to connect.
    pub fn accept_timeout(&self) -> Duration {
        self.accept_timeout
    }

    /// Frame payload cap in bytes.
    pub fn max_payload(&self) -> u32 {
        self.max_payload
    }

    /// Degree used for homomorphic aggregation and plain FedAvg.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Observability listen address, when the plane is enabled.
    pub fn obs_addr(&self) -> Option<&str> {
        self.obs_addr.as_deref()
    }

    /// Whether departed clients may reconnect mid-run.
    pub fn allow_rejoin(&self) -> bool {
        self.allow_rejoin
    }

    /// The CKKS wire codec uploads are expected in.
    pub fn codec(&self) -> &dyn WireCodec {
        self.codec.as_ref()
    }

    /// How model coordinates map onto ciphertext slots (must match
    /// every client's [`ClientConfig::packing`](crate::client::ClientConfig)).
    pub fn packing(&self) -> &packing::PackingConfig {
        &self.packing
    }

    /// Whether eligible CKKS rounds fold uploads as frames arrive
    /// instead of collecting them all and batch-aggregating.
    pub fn streaming_aggregation(&self) -> bool {
        self.streaming
    }

    /// How many undecoded uploads may be resident in server memory at
    /// once under streaming aggregation.
    pub fn max_resident_uploads(&self) -> usize {
        self.max_resident_uploads
    }

    /// Round-watchdog deadline as a multiple of `round_timeout`
    /// (0 = watchdog disabled).
    pub fn round_watchdog(&self) -> f64 {
        self.watchdog_multiple
    }

    /// Where flight-recorder snapshots are dumped on a stall or panic.
    pub fn flight_dump_dir(&self) -> Option<&std::path::Path> {
        self.flight_dump_dir.as_deref()
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.clients == 0 || self.rounds == 0 || self.model_params == 0 {
            return Err(NetError::Protocol(
                "clients, rounds, and model_params must be positive".into(),
            ));
        }
        if self.quorum == 0 || self.quorum > self.clients {
            return Err(NetError::Protocol(format!(
                "quorum {} must be in 1..={}",
                self.quorum, self.clients
            )));
        }
        if self.max_resident_uploads == 0 {
            return Err(NetError::Protocol("max_resident_uploads must be positive".into()));
        }
        if !self.watchdog_multiple.is_finite() || self.watchdog_multiple < 0.0 {
            return Err(NetError::Protocol(
                "round_watchdog multiple must be finite and non-negative".into(),
            ));
        }
        self.packing.validate()?;
        if self.packing.is_interleaved() && matches!(self.aggregation, Aggregation::FedNova) {
            return Err(NetError::Protocol(
                "bit-interleaved packing aggregates by uniform sum; FedNova's per-client \
                 weights require the dense layout"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; see [`ServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    clients: usize,
    quorum: Option<usize>,
    rounds: usize,
    model_params: usize,
    aggregation: Aggregation,
    io_timeout: Duration,
    round_timeout: Duration,
    accept_timeout: Duration,
    max_payload: u32,
    parallelism: Parallelism,
    obs_addr: Option<String>,
    allow_rejoin: bool,
    codec: Arc<dyn WireCodec>,
    packing: packing::PackingConfig,
    streaming: bool,
    max_resident_uploads: usize,
    watchdog_multiple: f64,
    flight_dump_dir: Option<PathBuf>,
}

impl Default for ServerConfigBuilder {
    fn default() -> Self {
        ServerConfigBuilder {
            clients: 0,
            quorum: None,
            rounds: 0,
            model_params: 0,
            aggregation: Aggregation::FedAvg,
            io_timeout: Duration::from_secs(5),
            round_timeout: Duration::from_secs(30),
            accept_timeout: Duration::from_secs(30),
            max_payload: DEFAULT_MAX_PAYLOAD,
            parallelism: Parallelism::Auto,
            obs_addr: None,
            allow_rejoin: false,
            codec: Arc::new(CanonicalCodec),
            packing: packing::PackingConfig::dense(),
            streaming: true,
            max_resident_uploads: 4,
            watchdog_multiple: 0.0,
            flight_dump_dir: None,
        }
    }
}

impl ServerConfigBuilder {
    /// Clients expected to connect (required, > 0).
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Minimum updates to close a round (defaults to all clients).
    pub fn quorum(mut self, quorum: usize) -> Self {
        self.quorum = Some(quorum);
        self
    }

    /// Aggregation rounds to run (required, > 0).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Trainable parameter count `D × L` (required, > 0).
    pub fn model_params(mut self, model_params: usize) -> Self {
        self.model_params = model_params;
        self
    }

    /// Aggregation rule (default [`Aggregation::FedAvg`]).
    pub fn aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Socket write / handshake-read timeout (default 5 s).
    pub fn io_timeout(mut self, io_timeout: Duration) -> Self {
        self.io_timeout = io_timeout;
        self
    }

    /// Collection window per round (default 30 s).
    pub fn round_timeout(mut self, round_timeout: Duration) -> Self {
        self.round_timeout = round_timeout;
        self
    }

    /// Window for all clients to connect (default 30 s).
    pub fn accept_timeout(mut self, accept_timeout: Duration) -> Self {
        self.accept_timeout = accept_timeout;
        self
    }

    /// Frame payload cap in bytes (default [`DEFAULT_MAX_PAYLOAD`]).
    pub fn max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Degree for aggregation math (default [`Parallelism::Auto`]).
    /// Results are bit-identical at every degree.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables the live observability plane on `addr` (e.g.
    /// `"127.0.0.1:9090"`, port 0 for OS-assigned): [`FlServer::bind`]
    /// starts an HTTP server exposing `/metrics`, `/healthz`,
    /// `/trace.json` and `/rounds.json`, switches telemetry recording
    /// on process-wide, and the round loop publishes the `fl.*` /
    /// `net.bytes.*` gauges plus one round-timeline record per round.
    /// Default: disabled.
    pub fn obs_addr(mut self, addr: impl Into<String>) -> Self {
        self.obs_addr = Some(addr.into());
        self
    }

    /// Lets a departed client reconnect with the same id and resume at
    /// the next round boundary (default: off). Rejoins take effect
    /// between rounds, so a client can never contribute two updates to
    /// one round: the round it reconnects during already counts it as
    /// dropped, and the per-round [`ServerRound`] dedupe rejects any
    /// duplicate id regardless.
    pub fn allow_rejoin(mut self, allow_rejoin: bool) -> Self {
        self.allow_rejoin = allow_rejoin;
        self
    }

    /// Selects the CKKS wire codec uploads must arrive in (default
    /// [`CanonicalCodec`]). Both endpoints of a federation must agree;
    /// clients set the matching codec on
    /// [`ClientConfig::codec`](crate::client::ClientConfig).
    pub fn codec<C: WireCodec + 'static>(mut self, codec: C) -> Self {
        self.codec = Arc::new(codec);
        self
    }

    /// Slot layout for CKKS uploads (default dense). A bit-interleaved
    /// layout packs several quantized coordinates per slot, aggregates
    /// by homomorphic sum, and leaves the mean division to the clients'
    /// decryption (driven by the in-band contributor counter); every
    /// client must be configured identically.
    pub fn packing(mut self, packing: packing::PackingConfig) -> Self {
        self.packing = packing;
        self
    }

    /// Toggles streaming aggregation (default: on). When on, eligible
    /// CKKS rounds fold each upload into the running encrypted sum as
    /// its frame arrives — bit-identical to batch, O(1) server memory
    /// in client count. Pass `false` to force the batch reference path
    /// (collect all uploads, then aggregate), mirroring how
    /// `set_eval_resident(false)` selects the reference NTT policy.
    /// Plaintext pipelines and [`Aggregation::FedNova`] always use the
    /// batch path regardless.
    pub fn streaming_aggregation(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Bounds how many undecoded uploads may be resident in server
    /// memory at once under streaming aggregation (default 4, must be
    /// positive). Handlers block before *reading* an update frame until
    /// a slot frees, so excess uploads wait in TCP backpressure rather
    /// than server buffers; a straggler holding a slot is bounded by
    /// the round deadline (its read times out and the slot frees).
    pub fn max_resident_uploads(mut self, max_resident_uploads: usize) -> Self {
        self.max_resident_uploads = max_resident_uploads;
        self
    }

    /// Arms the round watchdog: if any round phase (broadcast, collect,
    /// aggregate) makes no progress for `round_timeout × multiple`, the
    /// watchdog bumps the `fl.round.stalled` counter and — when
    /// [`flight_dump_dir`](Self::flight_dump_dir) is set — dumps a
    /// flight-recorder snapshot for post-mortem analysis. It fires at
    /// most once per stalled phase. Use a multiple ≥ 1 so a phase that
    /// legitimately runs to the round deadline is not reported; 0
    /// disables the watchdog (the default).
    pub fn round_watchdog(mut self, multiple: f64) -> Self {
        self.watchdog_multiple = multiple;
        self
    }

    /// Directory for flight-recorder snapshots (default: none). Setting
    /// it also installs a process-wide panic hook that dumps one final
    /// snapshot before the panic propagates, so a crashing server
    /// leaves its observability state behind. Dumps are written on
    /// watchdog stalls and panics; read them with the `mem_report`
    /// binary.
    pub fn flight_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flight_dump_dir = Some(dir.into());
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Protocol`] when `clients`, `rounds`, or
    /// `model_params` are unset/zero, `quorum` is outside
    /// `1..=clients`, or `max_resident_uploads` is zero.
    pub fn build(self) -> Result<ServerConfig, NetError> {
        let config = ServerConfig {
            clients: self.clients,
            quorum: self.quorum.unwrap_or(self.clients),
            rounds: self.rounds,
            model_params: self.model_params,
            aggregation: self.aggregation,
            io_timeout: self.io_timeout,
            round_timeout: self.round_timeout,
            accept_timeout: self.accept_timeout,
            max_payload: self.max_payload,
            parallelism: self.parallelism,
            obs_addr: self.obs_addr,
            allow_rejoin: self.allow_rejoin,
            codec: self.codec,
            packing: self.packing,
            streaming: self.streaming,
            max_resident_uploads: self.max_resident_uploads,
            watchdog_multiple: self.watchdog_multiple,
            flight_dump_dir: self.flight_dump_dir,
        };
        config.validate()?;
        Ok(config)
    }
}

/// Measurements from one networked round.
#[derive(Debug, Clone)]
pub struct NetRoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// Updates folded into the aggregate.
    pub received: usize,
    /// Clients still connected when the round closed.
    pub live_clients: usize,
    /// Late or duplicate uploads NACKed during this round.
    pub rejected: usize,
    /// Wall time spent in homomorphic/plain aggregation.
    pub aggregate_time: Duration,
}

/// Full-run measurements from the server side.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Per-round reports in order.
    pub rounds: Vec<NetRoundReport>,
    /// Clients that disconnected or violated the protocol mid-run.
    pub dropped_clients: usize,
    /// Successful mid-run reconnections (see
    /// [`ServerConfigBuilder::allow_rejoin`]). A client that departs and
    /// rejoins counts once in `dropped_clients` and once here.
    pub rejoined_clients: usize,
    /// Total bytes written to sockets (measured, not modeled).
    pub bytes_tx: u64,
    /// Total bytes read from sockets.
    pub bytes_rx: u64,
    /// The final global model as broadcast to clients: plaintext
    /// parameters, or `None` under CKKS (the server cannot decrypt).
    pub final_plain_model: Option<Vec<f32>>,
}

/// The server's current global model, in transport representation.
enum GlobalState {
    Plain(Vec<f32>),
    Ckks(Vec<CkksCiphertext>),
}

/// Coordinator → handler commands.
enum HandlerCmd {
    /// Write a `Global` frame; unless `last`, then read one `Update`.
    /// `ctx` is the round's trace context: handlers stamp it on the
    /// wire so client spans parent under this round's `net_round` span.
    Broadcast { round: usize, last: bool, payload: Arc<Vec<u8>>, ctx: Option<TraceContext> },
    /// Write an `UpdateAck` frame.
    Ack { round: usize, accepted: bool },
}

/// An upload deserialized on the handler thread that received it — or,
/// under streaming aggregation, shipped raw for the coordinator to fold
/// zero-copy.
enum DecodedModel {
    Plain(Vec<f32>),
    Ckks(Vec<CkksCiphertext>),
    /// Streaming path: the raw payload bytes, not yet parsed. The
    /// permit is this upload's resident-memory slot; dropping the event
    /// (right after the fold, or when a stale round's upload is NACKed)
    /// releases it and unblocks the next handler's read.
    Raw {
        payload: Vec<u8>,
        _permit: ResidencyPermit,
    },
    /// Undecodable or wrong-sized payload; the coordinator NACKs it.
    Invalid,
}

/// Handler → coordinator events.
enum ServerEvent {
    /// A client's upload arrived and was decoded (round validity not
    /// yet checked). `bytes` is the framed size read off the socket and
    /// `arrived` the read-completion instant, for the round timeline.
    Update {
        client_id: usize,
        round: usize,
        steps: usize,
        model: DecodedModel,
        bytes: u64,
        arrived: Instant,
    },
    /// A client disconnected, timed out, or violated the protocol.
    /// `generation` identifies which incarnation of the connection died,
    /// so a stale drop from a superseded handler can never evict a
    /// rejoined client's live one.
    Dropped { client_id: usize, generation: u64 },
}

/// How a handler thread deserializes the uploads it reads.
enum DecodeKind {
    Plain { model_params: usize },
    Ckks { ctx: Arc<CkksContext>, max_cts: usize, codec: Arc<dyn WireCodec> },
}

/// State shared by every handler thread.
struct HandlerShared {
    round_timeout: Duration,
    max_payload: u32,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    decode: DecodeKind,
    /// Set when streaming aggregation is active: handlers skip decoding
    /// and ship raw payloads, each holding one resident-upload permit.
    residency: Option<Arc<Residency>>,
}

impl HandlerShared {
    fn decode(&self, model: &[u8]) -> DecodedModel {
        match &self.decode {
            DecodeKind::Plain { model_params } => match codec::decode_plain(model, *model_params) {
                Ok(p) if p.len() == *model_params => DecodedModel::Plain(p),
                _ => DecodedModel::Invalid,
            },
            // A codec accepts *only* its own tag: mixing
            // evaluation-domain seeded uploads with coefficient-domain
            // canonical ones in a single aggregate would trip the
            // ciphertext domain check downstream.
            DecodeKind::Ckks { ctx, max_cts, codec } => {
                match codec.decode_upload(ctx, model, *max_cts) {
                    Ok(p) if p.len() == *max_cts => DecodedModel::Ckks(p),
                    _ => DecodedModel::Invalid,
                }
            }
        }
    }
}

/// A blocking-I/O TCP federated server.
pub struct FlServer {
    listener: TcpListener,
    config: ServerConfig,
    pipeline: ServerPipeline,
    obs: Option<ObsHandle>,
}

impl FlServer {
    /// Binds the listener. Use port 0 for an OS-assigned port and
    /// [`FlServer::local_addr`] to discover it.
    ///
    /// When the config carries an `obs_addr`, this also switches
    /// telemetry recording on and starts the observability HTTP server
    /// immediately — scrapers can watch `/healthz` while clients are
    /// still connecting, and [`FlServer::obs_addr`] reports the bound
    /// scrape address before [`FlServer::run`] is called.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] on an invalid config or a bind failure
    /// (either listener).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        pipeline: ServerPipeline,
    ) -> Result<Self, NetError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        if let Some(dir) = config.flight_dump_dir() {
            rhychee_obs::flight::install_panic_hook(dir.to_path_buf());
        }
        let obs = match config.obs_addr() {
            Some(obs_addr) => {
                telemetry::set_enabled(true);
                telemetry::mem::init_start_time();
                telemetry::gauge("fl.round.current", 0.0);
                telemetry::gauge("fl.rounds.total", config.rounds() as f64);
                telemetry::gauge("fl.clients.connected", 0.0);
                telemetry::gauge("fl.quorum.met", 0.0);
                Some(ObsServer::bind(obs_addr)?.spawn()?)
            }
            None => None,
        };
        Ok(FlServer { listener, config, pipeline, obs })
    }

    /// The bound address (for clients to connect to).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// The observability scrape address, when the plane is enabled.
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs.as_ref().map(ObsHandle::addr)
    }

    /// Runs the full federation: handshake, `rounds` aggregation
    /// rounds, final model distribution. Blocks until done.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::QuorumNotReached`] when a round (or the
    /// initial handshake) cannot gather `quorum` participants, or any
    /// I/O / protocol / FHE error that prevents the run from finishing.
    pub fn run(self) -> Result<ServerReport, NetError> {
        // The deprecated seeded pipeline variant forces its codec so
        // pre-redesign callers keep their wire format unchanged.
        #[allow(deprecated)]
        let (params, wire_codec): (Option<&CkksParams>, Arc<dyn WireCodec>) = match &self.pipeline {
            ServerPipeline::Plaintext => (None, Arc::clone(&self.config.codec)),
            ServerPipeline::Ckks(params) => (Some(params), Arc::clone(&self.config.codec)),
            ServerPipeline::CkksSeeded(params) => (Some(params), Arc::new(SeededCodec)),
        };
        let ctx = match params {
            Some(params) => Some(Arc::new(CkksContext::with_parallelism(
                params.clone(),
                self.config.parallelism,
            )?)),
            None => None,
        };
        let max_cts = ctx
            .as_ref()
            .map(|c| {
                packing::ciphertexts_needed_with(
                    &self.config.packing,
                    self.config.model_params,
                    c.slot_count(),
                )
            })
            .unwrap_or(0);
        // Streaming needs an encrypted pipeline (float addition is not
        // associative) and an aggregation rule whose weights are known
        // per upload; everything else batches.
        let streaming = self.config.streaming
            && ctx.is_some()
            && StreamingAggregator::supports(self.config.aggregation);
        let residency = streaming.then(|| Residency::new(self.config.max_resident_uploads));
        let decode = match &ctx {
            Some(c) => {
                DecodeKind::Ckks { ctx: Arc::clone(c), max_cts, codec: Arc::clone(&wire_codec) }
            }
            None => DecodeKind::Plain { model_params: self.config.model_params },
        };
        let shared = Arc::new(HandlerShared {
            round_timeout: self.config.round_timeout,
            max_payload: self.config.max_payload,
            bytes_tx: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
            decode,
            residency: residency.clone(),
        });

        let (event_tx, event_rx) = mpsc::channel::<ServerEvent>();
        let mut handlers = self.accept_clients(&event_tx, &shared)?;
        telemetry::gauge("fl.clients.connected", handlers.len() as f64);

        // Liveness: every round-phase transition beats the watchdog; a
        // phase that overstays round_timeout × multiple gets reported
        // once and flight-recorded (ServerConfigBuilder::round_watchdog).
        let watchdog = (self.config.watchdog_multiple > 0.0).then(|| {
            Watchdog::spawn(
                self.config.round_timeout.mul_f64(self.config.watchdog_multiple),
                self.config.flight_dump_dir.clone(),
            )
        });
        let beat = |phase: &'static str| {
            if let Some(wd) = &watchdog {
                wd.beat(phase);
            }
        };

        // Rejoin support: a shared id set gates duplicate Hellos (the
        // coordinator owns the handler map, so the background acceptor
        // cannot check it directly), and queued reconnections activate
        // only at round boundaries.
        let connected: Arc<Mutex<HashSet<usize>>> =
            Arc::new(Mutex::new(handlers.keys().copied().collect()));
        let mut next_generation = 0u64;
        let rejoin = if self.config.allow_rejoin {
            Some(RejoinAcceptor::spawn(
                self.listener.try_clone()?,
                self.config.clone(),
                Arc::clone(&connected),
                Arc::clone(&shared),
            ))
        } else {
            None
        };
        // Handlers spawned mid-run need a live Sender; without rejoin,
        // drop it now so the channel disconnects once handlers exit.
        let event_tx = if rejoin.is_some() { Some(event_tx) } else { None };

        // One trace id spans the whole federation run; each round's wire
        // context chains client spans under that round's `net_round`.
        if telemetry::enabled() {
            telemetry::trace::set_actor("server");
        }
        let trace_id = if telemetry::enabled() { telemetry::trace::new_trace_id() } else { 0 };

        let mut report = ServerReport::default();
        let mut global = GlobalState::Plain(vec![0.0; self.config.model_params]);

        for round in 0..self.config.rounds {
            let span = telemetry::span("net_round");
            let round_ctx = (span.id() != 0).then(|| TraceContext {
                trace_id,
                parent_span: span.id(),
                round: round as u32,
            });
            // Activate rejoins queued since the last round boundary, so
            // a reconnecting client re-enters with a full round — it can
            // never contribute a second update to a round in flight.
            if let Some(acceptor) = rejoin.as_ref() {
                while let Ok((client_id, stream)) = acceptor.rx.try_recv() {
                    if handlers.contains_key(&client_id) {
                        continue; // superseded by a still-live handler
                    }
                    next_generation += 1;
                    let events = event_tx.as_ref().expect("rejoin keeps the sender").clone();
                    let handler =
                        spawn_handler(client_id, next_generation, stream, events, &shared);
                    handlers.insert(client_id, handler);
                    connected.lock().expect("connected set").insert(client_id);
                    report.rejoined_clients += 1;
                    telemetry::count("net.rejoins", 1);
                }
                telemetry::gauge("fl.clients.connected", handlers.len() as f64);
            }

            let round_start = Instant::now();
            let round_start_ns = telemetry::trace::now_ns();
            let live_at_start = handlers.len();
            // 1-based "round in flight" (0 means still handshaking).
            telemetry::gauge("fl.round.current", (round + 1) as f64);
            beat("broadcast");
            let payload = Arc::new(self.encode_global(&global, ctx.as_deref()));
            for h in handlers.values() {
                let _ = h.cmd_tx.send(HandlerCmd::Broadcast {
                    round,
                    last: false,
                    payload: Arc::clone(&payload),
                    ctx: round_ctx,
                });
            }

            let mut agg = if streaming {
                RoundAgg::Stream(
                    StreamingAggregator::new(round, self.config.aggregation)
                        .expect("streaming eligibility checked above"),
                )
            } else {
                RoundAgg::Batch(match &ctx {
                    Some(_) => Collected::Ckks(ServerRound::new(round, self.config.aggregation)),
                    None => Collected::Plain(ServerRound::new(round, self.config.aggregation)),
                })
            };
            let mut rejected = 0usize;
            let mut arrivals: Vec<rhychee_obs::rounds::ClientArrival> = Vec::new();
            let mut quorum_ns: Option<u64> = None;
            beat("collect");
            let deadline = Instant::now() + self.config.round_timeout;
            // A client whose upload already folded may drop out of
            // `handlers` before the round closes; its contribution
            // stays counted (matching the batch path), so `received`
            // can meet or exceed the shrinking live-handler count.
            while agg.received() < handlers.len() {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match event_rx.recv_timeout(remaining) {
                    Ok(ServerEvent::Update {
                        client_id,
                        round: r,
                        steps,
                        model,
                        bytes,
                        arrived,
                    }) => {
                        let accepted = r == round
                            && match (&mut agg, model) {
                                (RoundAgg::Stream(s), DecodedModel::Raw { payload, _permit }) => {
                                    let cx = ctx.as_deref().expect("streaming requires CKKS");
                                    // Parse outside the fold span: building
                                    // the per-chunk view table allocates one
                                    // small Vec, and the zero-alloc claim is
                                    // about the fold kernel itself.
                                    let parsed = wire_codec.parse_upload(cx, &payload, max_cts);
                                    let fspan = telemetry::span("net_fold");
                                    let folded = match parsed {
                                        Ok(mv) if mv.len() == max_cts => s
                                            .fold_upload(cx, client_id, r, mv.views())
                                            .map_err(|e| stream_abort(round, e))?,
                                        _ => false,
                                    };
                                    // Per-phase allocation attribution:
                                    // a steady-state fold should report
                                    // 0 bytes (the streaming path reuses
                                    // the accumulator in place).
                                    if telemetry::alloc::installed() {
                                        telemetry::observe(
                                            "fl.phase.fold.alloc_bytes",
                                            fspan.alloc_bytes(),
                                        );
                                    }
                                    telemetry::observe_duration("fl.phase.fold.ns", fspan.finish());
                                    // `payload` and its residency permit
                                    // drop here: the upload's bytes live
                                    // only for the duration of the fold.
                                    folded
                                }
                                (RoundAgg::Batch(sr), model) => {
                                    accept_update(sr, client_id, r, steps, model)
                                }
                                // A raw payload under batch or a decoded
                                // one under streaming cannot happen; NACK
                                // defensively rather than trust it.
                                _ => false,
                            };
                        if !accepted {
                            rejected += 1;
                            telemetry::count("net.frame.nack", 1);
                            telemetry::count_labeled(
                                "net.client.nacks",
                                "client_id",
                                &client_id.to_string(),
                                1,
                            );
                        }
                        let offset_ns =
                            arrived.saturating_duration_since(round_start).as_nanos() as u64;
                        arrivals.push(rhychee_obs::rounds::ClientArrival {
                            client_id,
                            offset_ns,
                            bytes,
                            accepted,
                        });
                        if accepted && quorum_ns.is_none() && agg.received() >= self.config.quorum {
                            quorum_ns = Some(offset_ns);
                        }
                        if let Some(h) = handlers.get(&client_id) {
                            let _ = h.cmd_tx.send(HandlerCmd::Ack { round: r, accepted });
                        }
                    }
                    Ok(ServerEvent::Dropped { client_id, generation }) => {
                        self.drop_client(
                            &mut handlers,
                            client_id,
                            generation,
                            &mut report,
                            &connected,
                        );
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }

            telemetry::gauge("fl.clients.connected", handlers.len() as f64);
            if agg.received() < self.config.quorum {
                telemetry::gauge("fl.quorum.met", 0.0);
                return Err(NetError::QuorumNotReached {
                    round,
                    received: agg.received(),
                    quorum: self.config.quorum,
                });
            }
            telemetry::gauge("fl.quorum.met", 1.0);

            beat("aggregate");
            let agg_span = telemetry::span("net_aggregate");
            let received = agg.received();
            let interleaved = self.config.packing.is_interleaved();
            global = match agg {
                RoundAgg::Batch(sr) => {
                    sr.aggregate(ctx.as_deref(), self.config.parallelism, interleaved)?
                }
                // Interleaved lanes survive only pure additions: close
                // with the raw sum and let decryption divide by the
                // in-band contributor counter.
                RoundAgg::Stream(s) if interleaved => {
                    GlobalState::Ckks(s.finish_sum().map_err(|e| stream_abort(round, e))?)
                }
                RoundAgg::Stream(s) => {
                    let cx = ctx.as_deref().expect("streaming requires CKKS");
                    GlobalState::Ckks(s.finish(cx).map_err(|e| stream_abort(round, e))?)
                }
            };
            if telemetry::alloc::installed() {
                telemetry::observe("fl.phase.aggregate.alloc_bytes", agg_span.alloc_bytes());
            }
            let aggregate_time = agg_span.finish();
            telemetry::observe_duration("fl.phase.aggregate.ns", aggregate_time);
            report.rounds.push(NetRoundReport {
                round,
                received,
                live_clients: handlers.len(),
                rejected,
                aggregate_time,
            });
            if telemetry::enabled() {
                rhychee_obs::rounds::record(rhychee_obs::rounds::RoundRecord {
                    round,
                    start_ns: round_start_ns,
                    quorum_ns,
                    close_ns: round_start.elapsed().as_nanos() as u64,
                    received,
                    rejected,
                    stragglers: live_at_start.saturating_sub(received),
                    arrivals,
                });
            }
            telemetry::gauge("net.bytes.tx", shared.bytes_tx.load(Ordering::Relaxed) as f64);
            telemetry::gauge("net.bytes.rx", shared.bytes_rx.load(Ordering::Relaxed) as f64);
            if let Some(residency) = &residency {
                telemetry::gauge("net.agg.resident_uploads", residency.held() as f64);
                telemetry::gauge("net.agg.peak_resident_uploads", residency.peak() as f64);
                telemetry::gauge("net.agg.resident_upload_bytes", residency.bytes() as f64);
                telemetry::gauge(
                    "net.agg.peak_resident_upload_bytes",
                    residency.peak_bytes() as f64,
                );
            }
            span.finish();
            beat("idle");
        }

        // Final distribution: the aggregated model of the last round.
        beat("final_broadcast");
        let payload = Arc::new(self.encode_global(&global, ctx.as_deref()));
        for h in handlers.values() {
            let _ = h.cmd_tx.send(HandlerCmd::Broadcast {
                round: self.config.rounds,
                last: true,
                payload: Arc::clone(&payload),
                ctx: None,
            });
        }
        for (_, h) in handlers.drain() {
            drop(h.cmd_tx);
            let _ = h.join.join();
        }
        drop(watchdog); // the run is over; nothing left to stall
        if let Some(acceptor) = rejoin {
            acceptor.shutdown();
        }
        drop(event_tx);
        // Drain any last events so dropped counts are accurate.
        while let Ok(ev) = event_rx.try_recv() {
            if let ServerEvent::Dropped { .. } = ev {
                report.dropped_clients += 1;
                telemetry::count("net.dropped_clients", 1);
            }
        }

        report.bytes_tx = shared.bytes_tx.load(Ordering::Relaxed);
        report.bytes_rx = shared.bytes_rx.load(Ordering::Relaxed);
        report.final_plain_model = match global {
            GlobalState::Plain(m) => Some(m),
            GlobalState::Ckks(_) => None,
        };
        Ok(report)
    }

    /// Accepts connections and completes the Hello/Welcome handshake
    /// until all expected clients are in or the accept window closes.
    fn accept_clients(
        &self,
        event_tx: &Sender<ServerEvent>,
        shared: &Arc<HandlerShared>,
    ) -> Result<HashMap<usize, Handler>, NetError> {
        self.listener.set_nonblocking(true)?;
        let mut handlers = HashMap::new();
        let deadline = Instant::now() + self.config.accept_timeout;
        while handlers.len() < self.config.clients && Instant::now() < deadline {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            match handshake(stream, &self.config, |id| handlers.contains_key(&id), shared) {
                Ok((client_id, stream)) => {
                    let handler = spawn_handler(client_id, 0, stream, event_tx.clone(), shared);
                    handlers.insert(client_id, handler);
                }
                Err(_) => continue, // a bad handshake never kills the server
            }
        }
        if handlers.len() < self.config.quorum {
            return Err(NetError::QuorumNotReached {
                round: 0,
                received: handlers.len(),
                quorum: self.config.quorum,
            });
        }
        Ok(handlers)
    }

    fn drop_client(
        &self,
        handlers: &mut HashMap<usize, Handler>,
        client_id: usize,
        generation: u64,
        report: &mut ServerReport,
        connected: &Mutex<HashSet<usize>>,
    ) {
        // A drop names the connection incarnation that died. If the
        // mapped handler is from a different (newer) generation, the
        // client already rejoined and this drop is stale — ignore it.
        match handlers.get(&client_id) {
            Some(h) if h.generation == generation => {}
            _ => return,
        }
        if let Some(h) = handlers.remove(&client_id) {
            drop(h.cmd_tx);
            let _ = h.join.join();
            connected.lock().expect("connected set").remove(&client_id);
            report.dropped_clients += 1;
            telemetry::count("net.dropped_clients", 1);
        }
    }

    fn encode_global(&self, global: &GlobalState, ctx: Option<&CkksContext>) -> Vec<u8> {
        match (global, ctx) {
            (GlobalState::Plain(m), _) => codec::encode_plain(m),
            (GlobalState::Ckks(cts), Some(ctx)) => codec::encode_ckks(ctx, cts),
            (GlobalState::Ckks(_), None) => unreachable!("CKKS state without a context"),
        }
    }
}

/// Completes the Hello/Welcome handshake on a fresh connection.
/// `taken` reports whether a client id is already connected — the
/// accept loop checks its handler map, the rejoin acceptor a shared id
/// set — so a duplicate Hello is rejected either way.
fn handshake(
    stream: TcpStream,
    config: &ServerConfig,
    taken: impl Fn(usize) -> bool,
    shared: &HandlerShared,
) -> Result<(usize, TcpStream), NetError> {
    let mut stream = stream;
    // The listener is nonblocking for the accept deadline; accepted
    // streams must not be.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.io_timeout()))?;
    stream.set_write_timeout(Some(config.io_timeout()))?;
    let (msg, n) = wire::read_message(&mut stream, config.max_payload())?;
    shared.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
    telemetry::count("net.bytes_rx", n as u64);
    let client_id = match msg {
        Message::Hello { client_id } => client_id,
        other => return Err(NetError::Protocol(format!("expected Hello, got {}", other.name()))),
    };
    if client_id >= config.clients() || taken(client_id) {
        return Err(NetError::Protocol(format!("invalid or duplicate client id {client_id}")));
    }
    let n = wire::write_message(
        &mut stream,
        &Message::Welcome { client_id, clients: config.clients(), rounds: config.rounds() },
    )?;
    shared.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
    telemetry::count("net.bytes_tx", n as u64);
    Ok((client_id, stream))
}

/// The background accept loop behind
/// [`ServerConfigBuilder::allow_rejoin`]: keeps listening after the
/// initial handshake window, re-admitting departed clients. Handshaken
/// streams are queued to the coordinator, which activates them at the
/// next round boundary.
struct RejoinAcceptor {
    rx: Receiver<(usize, TcpStream)>,
    stop: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl RejoinAcceptor {
    fn spawn(
        listener: TcpListener,
        config: ServerConfig,
        connected: Arc<Mutex<HashSet<usize>>>,
        shared: Arc<HandlerShared>,
    ) -> RejoinAcceptor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let (tx, rx) = mpsc::channel();
        let join = thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    Err(_) => break,
                };
                // Reject ids still mapped to a live handler; a departed
                // client's id leaves the set when its drop is processed.
                let taken =
                    |id: usize| connected.lock().map(|set| set.contains(&id)).unwrap_or(true);
                match handshake(stream, &config, taken, &shared) {
                    Ok(pair) => {
                        if tx.send(pair).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue, // a bad handshake never kills the server
                }
            }
        });
        RejoinAcceptor { rx, stop, join }
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.join.join();
    }
}

/// One round's aggregation state: the batch reference path (collect
/// all uploads, aggregate after quorum) or the streaming path (fold
/// each upload as its frame arrives). Both close to the same bytes.
enum RoundAgg {
    Batch(Collected),
    Stream(StreamingAggregator),
}

impl RoundAgg {
    fn received(&self) -> usize {
        match self {
            RoundAgg::Batch(sr) => sr.received(),
            RoundAgg::Stream(s) => s.received(),
        }
    }
}

/// Maps a streaming-path framework error to the wire-level abort,
/// tagging it with the round whose sum became untrustworthy.
fn stream_abort(round: usize, e: FlError) -> NetError {
    match e {
        FlError::StreamingAbort(reason) => NetError::StreamingAbort { round, reason },
        other => NetError::Fl(other),
    }
}

/// Round collection state, typed by pipeline.
enum Collected {
    Plain(ServerRound<Vec<f32>>),
    Ckks(ServerRound<Vec<CkksCiphertext>>),
}

impl Collected {
    fn received(&self) -> usize {
        match self {
            Collected::Plain(sr) => sr.received(),
            Collected::Ckks(sr) => sr.received(),
        }
    }

    fn aggregate(
        self,
        ctx: Option<&CkksContext>,
        par: Parallelism,
        interleaved: bool,
    ) -> Result<GlobalState, NetError> {
        match (self, ctx) {
            (Collected::Plain(sr), _) => Ok(GlobalState::Plain(sr.aggregate_with(par)?)),
            (Collected::Ckks(sr), Some(ctx)) if interleaved => {
                Ok(GlobalState::Ckks(sr.aggregate_ckks_sum(ctx)?))
            }
            (Collected::Ckks(sr), Some(ctx)) => Ok(GlobalState::Ckks(sr.aggregate_ckks(ctx)?)),
            (Collected::Ckks(_), None) => unreachable!("CKKS state without a context"),
        }
    }
}

/// Offers an on-time, handler-decoded update to the round; returns
/// whether it was folded in.
fn accept_update(
    sr: &mut Collected,
    client_id: usize,
    round: usize,
    steps: usize,
    model: DecodedModel,
) -> bool {
    match (sr, model) {
        (Collected::Plain(sr), DecodedModel::Plain(payload)) => {
            sr.accept(ClientUpdate { client_id, round, steps, payload })
        }
        (Collected::Ckks(sr), DecodedModel::Ckks(payload)) => {
            sr.accept(ClientUpdate { client_id, round, steps, payload })
        }
        _ => false,
    }
}

struct Handler {
    cmd_tx: Sender<HandlerCmd>,
    join: thread::JoinHandle<()>,
    /// Incarnation of this client's connection: 0 for the initial
    /// handshake, bumped on every rejoin. Dropped events carry the
    /// generation of the connection that died; the coordinator ignores
    /// drops whose generation does not match the mapped handler.
    generation: u64,
}

fn spawn_handler(
    client_id: usize,
    generation: u64,
    stream: TcpStream,
    events: Sender<ServerEvent>,
    shared: &Arc<HandlerShared>,
) -> Handler {
    let (cmd_tx, cmd_rx) = mpsc::channel();
    let shared = Arc::clone(shared);
    let join = thread::spawn(move || {
        handler_loop(client_id, generation, stream, &cmd_rx, &events, &shared);
    });
    Handler { cmd_tx, join, generation }
}

/// Per-connection I/O loop: writes broadcasts/acks, reads one update per
/// (non-final) broadcast, decodes it in place, and reports everything to
/// the coordinator.
fn handler_loop(
    client_id: usize,
    generation: u64,
    mut stream: TcpStream,
    cmds: &Receiver<HandlerCmd>,
    events: &Sender<ServerEvent>,
    shared: &HandlerShared,
) {
    let drop_self = |events: &Sender<ServerEvent>| {
        let _ = events.send(ServerEvent::Dropped { client_id, generation });
    };
    if telemetry::enabled() {
        telemetry::trace::set_actor("server");
    }
    // Updates may legitimately take a whole training phase to arrive.
    if stream.set_read_timeout(Some(shared.round_timeout)).is_err() {
        drop_self(events);
        return;
    }
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            HandlerCmd::Ack { round, accepted } => {
                match wire::write_message(&mut stream, &Message::UpdateAck { round, accepted }) {
                    Ok(n) => {
                        shared.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                        telemetry::count("net.bytes_tx", n as u64);
                    }
                    Err(_) => {
                        drop_self(events);
                        return;
                    }
                }
            }
            HandlerCmd::Broadcast { round, last, payload, ctx } => {
                // Spans opened on this thread parent under the round's
                // `net_round` span via the wire context.
                telemetry::trace::set_remote_context(ctx);
                let msg = Message::Global { round, last, model: payload.as_ref().clone() };
                let bspan = telemetry::span("broadcast");
                let wrote = wire::write_message_ctx(&mut stream, &msg, ctx.as_ref());
                if telemetry::alloc::installed() {
                    telemetry::observe("fl.phase.broadcast.alloc_bytes", bspan.alloc_bytes());
                }
                telemetry::observe_duration("fl.phase.broadcast.ns", bspan.finish());
                match wrote {
                    Ok(n) => {
                        shared.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                        telemetry::count("net.bytes_tx", n as u64);
                    }
                    Err(_) => {
                        if !last {
                            drop_self(events);
                        }
                        return;
                    }
                }
                if last {
                    let n = wire::write_message(&mut stream, &Message::Finished { round });
                    if let Ok(n) = n {
                        shared.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                        telemetry::count("net.bytes_tx", n as u64);
                    }
                    return;
                }
                // Under streaming aggregation, claim a resident-upload
                // slot *before* copying the frame out of the kernel —
                // but only once this client's bytes have actually
                // started arriving (`peek`), so a straggler that is
                // still training never parks on a slot and starves the
                // clients that are ready (quorum tolerance depends on
                // the fast uploads getting through). Until a slot
                // frees, the payload waits in the kernel's TCP buffers
                // (and on the client's side of the connection), not
                // here.
                let sent_at = Instant::now();
                let permit = match &shared.residency {
                    Some(residency) => {
                        if !matches!(stream.peek(&mut [0u8]), Ok(n) if n > 0) {
                            drop_self(events);
                            return;
                        }
                        Some(residency.acquire())
                    }
                    None => None,
                };
                match wire::read_message_ctx(&mut stream, shared.max_payload) {
                    Ok((Message::Update { round, client_id: cid, steps, model }, uctx, n))
                        if cid == client_id =>
                    {
                        let arrived = Instant::now();
                        shared.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                        telemetry::count("net.bytes_rx", n as u64);
                        if telemetry::enabled() {
                            let label = client_id.to_string();
                            telemetry::count_labeled(
                                "net.client.upload_bytes",
                                "client_id",
                                &label,
                                n as u64,
                            );
                            telemetry::observe_labeled(
                                "net.client.rtt_ns",
                                "client_id",
                                &label,
                                arrived.saturating_duration_since(sent_at).as_nanos() as u64,
                            );
                        }
                        // Streaming: ship the raw bytes (and their
                        // residency permit) straight to the coordinator
                        // for a zero-copy fold. Batch: deserialize here,
                        // on the connection's own thread, so P clients'
                        // ciphertext payloads decode concurrently
                        // instead of queueing on the coordinator. When
                        // the upload carried a context, the decode
                        // parents under the client's upload span rather
                        // than the round span.
                        let model = match permit {
                            Some(mut permit) => {
                                // Charge the payload's bytes to the slot
                                // so the memory plane can see exactly how
                                // much raw upload data is resident.
                                permit.track_bytes(model.len() as u64);
                                DecodedModel::Raw { payload: model, _permit: permit }
                            }
                            None => {
                                if uctx.is_some() {
                                    telemetry::trace::set_remote_context(uctx);
                                }
                                let span = telemetry::span("net_decode");
                                let model = shared.decode(&model);
                                span.finish();
                                if uctx.is_some() {
                                    telemetry::trace::set_remote_context(ctx);
                                }
                                model
                            }
                        };
                        let _ = events.send(ServerEvent::Update {
                            client_id,
                            round,
                            steps,
                            model,
                            bytes: n as u64,
                            arrived,
                        });
                    }
                    _ => {
                        // Disconnect, timeout past the full round window,
                        // or a protocol violation: the client is gone.
                        drop_self(events);
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_full_quorum() {
        let cfg =
            ServerConfig::builder().clients(5).rounds(2).model_params(100).build().expect("valid");
        assert_eq!(cfg.quorum(), 5);
        assert_eq!(cfg.max_payload(), DEFAULT_MAX_PAYLOAD);
        assert_eq!(cfg.parallelism(), Parallelism::Auto);
    }

    #[test]
    fn builder_rejects_missing_required_fields() {
        assert!(ServerConfig::builder().build().is_err());
        assert!(ServerConfig::builder().clients(4).rounds(3).build().is_err());
        assert!(ServerConfig::builder().clients(4).model_params(10).build().is_err());
    }

    #[test]
    fn builder_configures_watchdog_and_dump_dir() {
        let base = || ServerConfig::builder().clients(4).rounds(3).model_params(10);
        let cfg = base().build().expect("valid");
        assert_eq!(cfg.round_watchdog(), 0.0, "watchdog defaults to disabled");
        assert!(cfg.flight_dump_dir().is_none());
        let cfg = base()
            .round_watchdog(1.5)
            .flight_dump_dir("/tmp/rhychee-dumps")
            .build()
            .expect("valid");
        assert_eq!(cfg.round_watchdog(), 1.5);
        assert_eq!(cfg.flight_dump_dir(), Some(std::path::Path::new("/tmp/rhychee-dumps")));
        assert!(base().round_watchdog(-1.0).build().is_err());
        assert!(base().round_watchdog(f64::NAN).build().is_err());
    }

    #[test]
    fn builder_rejects_bad_quorum() {
        let base = || ServerConfig::builder().clients(4).rounds(3).model_params(10);
        assert!(base().quorum(0).build().is_err());
        assert!(base().quorum(5).build().is_err());
        assert!(base().quorum(4).build().is_ok());
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = ServerConfig::builder()
            .clients(8)
            .quorum(6)
            .rounds(4)
            .model_params(2048)
            .aggregation(Aggregation::FedNova)
            .io_timeout(Duration::from_secs(1))
            .round_timeout(Duration::from_secs(2))
            .accept_timeout(Duration::from_secs(3))
            .max_payload(1 << 20)
            .parallelism(Parallelism::Fixed(2))
            .build()
            .expect("valid");
        assert_eq!(cfg.clients(), 8);
        assert_eq!(cfg.quorum(), 6);
        assert_eq!(cfg.rounds(), 4);
        assert_eq!(cfg.model_params(), 2048);
        assert_eq!(cfg.aggregation(), Aggregation::FedNova);
        assert_eq!(cfg.io_timeout(), Duration::from_secs(1));
        assert_eq!(cfg.round_timeout(), Duration::from_secs(2));
        assert_eq!(cfg.accept_timeout(), Duration::from_secs(3));
        assert_eq!(cfg.max_payload(), 1 << 20);
        assert_eq!(cfg.parallelism(), Parallelism::Fixed(2));
    }
}
