//! The Rhychee-FL wire protocol: length-prefixed, versioned, CRC-guarded
//! binary frames over a byte stream.
//!
//! Frame layout (all integers little-endian):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"RYFL"` |
//! | 4      | 1    | protocol version (1 = plain, 2 = traced) |
//! | 5      | 1    | message type |
//! | 6      | 4    | round id |
//! | 10     | 4    | payload length `len` |
//! | 14     | 24   | trace context (version 2 only: 16-byte trace id + 8-byte parent span id) |
//! | 14[+24]| len  | payload |
//! | …+len  | 4    | CRC-32 (IEEE 802.3, from [`rhychee_channel::crc`]) over bytes `[4, …+len)` |
//!
//! Version 1 frames carry no trace context and stay byte-identical to
//! the original protocol; version 2 inserts a fixed 24-byte
//! [`TraceContext`] between header and payload so spans on the receiving
//! side can parent under the sender's span. Senders emit version 2 only
//! when they have a context to propagate (telemetry enabled), so a
//! telemetry-off federation is wire-identical to version 1; decoders
//! accept both versions.
//!
//! The declared payload length is validated against the receiver's cap
//! *before* any allocation, so a malicious or corrupted length field
//! cannot drive unbounded memory use. The CRC covers everything after
//! the magic — version, type, round, length, trace context, and payload
//! — so a flipped bit anywhere in the frame body is detected at the
//! frame layer before the ciphertext codecs ever see the bytes. CRC
//! mismatches count into `net.frame.crc_fail`.

use std::io::{Read, Write};

use rhychee_channel::crc::crc32;
use rhychee_telemetry as telemetry;
pub use rhychee_telemetry::TraceContext;

use crate::error::NetError;

/// Frame magic: the first four bytes of every Rhychee-FL frame.
pub const MAGIC: [u8; 4] = *b"RYFL";

/// Baseline protocol version: no trace context.
pub const VERSION: u8 = 1;

/// Traced protocol version: a [`TraceContext`] sits between the header
/// and the payload.
pub const VERSION_TRACED: u8 = 2;

/// Fixed bytes before the payload: magic + version + type + round + len.
pub const HEADER_LEN: usize = 14;

/// Extra bytes a version-2 frame carries between header and payload.
pub const CTX_LEN: usize = TraceContext::WIRE_LEN;

/// Fixed bytes after the payload: the CRC-32 trailer.
pub const TRAILER_LEN: usize = 4;

/// Default payload cap: 64 MiB, far above any packed model this repo
/// produces yet small enough to bound a hostile allocation.
pub const DEFAULT_MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A protocol message between one client and the server.
///
/// Model payloads travel as opaque bytes at this layer; the
/// [`codec`](crate::codec) module defines their interior encoding
/// (plaintext parameters or serialized ciphertexts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server: first message on a fresh connection.
    Hello {
        /// The connecting client's id.
        client_id: usize,
    },
    /// Server → client: session parameters, closing the handshake.
    Welcome {
        /// Echo of the client id the server registered.
        client_id: usize,
        /// Total clients in the federation.
        clients: usize,
        /// Aggregation rounds the server will run.
        rounds: usize,
    },
    /// Server → client: the global model opening a round (or, with
    /// `last` set, the final model closing the session).
    Global {
        /// Round this model opens (== total rounds when `last`).
        round: usize,
        /// True on the final distribution; the client should not train.
        last: bool,
        /// Codec-encoded model payload.
        model: Vec<u8>,
    },
    /// Client → server: the trained local model for a round.
    Update {
        /// Round this update was trained for.
        round: usize,
        /// The reporting client.
        client_id: usize,
        /// Local update steps τ (FedNova weighting).
        steps: usize,
        /// Codec-encoded model payload.
        model: Vec<u8>,
    },
    /// Server → client: receipt for an upload. `accepted == false`
    /// means the update was rejected (late round or duplicate).
    UpdateAck {
        /// The round the upload targeted.
        round: usize,
        /// Whether the server folded the update into the aggregate.
        accepted: bool,
    },
    /// Server → client: the session is over (sent after the final
    /// [`Message::Global`]).
    Finished {
        /// The last completed round.
        round: usize,
    },
}

impl Message {
    /// The message-type byte stored in the frame header.
    pub fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Welcome { .. } => 2,
            Message::Global { .. } => 3,
            Message::Update { .. } => 4,
            Message::UpdateAck { .. } => 5,
            Message::Finished { .. } => 6,
        }
    }

    /// Human-readable message name (error reporting).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::Welcome { .. } => "Welcome",
            Message::Global { .. } => "Global",
            Message::Update { .. } => "Update",
            Message::UpdateAck { .. } => "UpdateAck",
            Message::Finished { .. } => "Finished",
        }
    }

    /// The round id stored in the frame header.
    fn round_field(&self) -> u32 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 0,
            Message::Global { round, .. }
            | Message::Update { round, .. }
            | Message::UpdateAck { round, .. }
            | Message::Finished { round } => *round as u32,
        }
    }

    /// Serializes the message body (frame payload, excluding headers).
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { client_id } => {
                out.extend_from_slice(&(*client_id as u32).to_le_bytes());
            }
            Message::Welcome { client_id, clients, rounds } => {
                out.extend_from_slice(&(*client_id as u32).to_le_bytes());
                out.extend_from_slice(&(*clients as u32).to_le_bytes());
                out.extend_from_slice(&(*rounds as u32).to_le_bytes());
            }
            Message::Global { last, model, .. } => {
                out.push(u8::from(*last));
                out.extend_from_slice(model);
            }
            Message::Update { client_id, steps, model, .. } => {
                out.extend_from_slice(&(*client_id as u32).to_le_bytes());
                out.extend_from_slice(&(*steps as u32).to_le_bytes());
                out.extend_from_slice(model);
            }
            Message::UpdateAck { accepted, .. } => {
                out.push(u8::from(*accepted));
            }
            Message::Finished { .. } => {}
        }
        out
    }

    /// Parses a message body for the given header type/round.
    fn decode_body(msg_type: u8, round: u32, body: &[u8]) -> Result<Message, NetError> {
        let round = round as usize;
        let le_u32 = |b: &[u8], at: usize| -> Result<usize, NetError> {
            let chunk: [u8; 4] = b
                .get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| NetError::Protocol(format!("message body truncated at {at}")))?;
            Ok(u32::from_le_bytes(chunk) as usize)
        };
        match msg_type {
            1 => {
                if body.len() != 4 {
                    return Err(NetError::Protocol(format!("Hello body of {} bytes", body.len())));
                }
                Ok(Message::Hello { client_id: le_u32(body, 0)? })
            }
            2 => {
                if body.len() != 12 {
                    return Err(NetError::Protocol(format!(
                        "Welcome body of {} bytes",
                        body.len()
                    )));
                }
                Ok(Message::Welcome {
                    client_id: le_u32(body, 0)?,
                    clients: le_u32(body, 4)?,
                    rounds: le_u32(body, 8)?,
                })
            }
            3 => {
                let (&last, model) = body
                    .split_first()
                    .ok_or_else(|| NetError::Protocol("empty Global body".into()))?;
                if last > 1 {
                    return Err(NetError::Protocol(format!("Global.last byte {last}")));
                }
                Ok(Message::Global { round, last: last == 1, model: model.to_vec() })
            }
            4 => {
                if body.len() < 8 {
                    return Err(NetError::Protocol(format!("Update body of {} bytes", body.len())));
                }
                Ok(Message::Update {
                    round,
                    client_id: le_u32(body, 0)?,
                    steps: le_u32(body, 4)?,
                    model: body[8..].to_vec(),
                })
            }
            5 => {
                if body.len() != 1 || body[0] > 1 {
                    return Err(NetError::Protocol("malformed UpdateAck body".into()));
                }
                Ok(Message::UpdateAck { round, accepted: body[0] == 1 })
            }
            6 => {
                if !body.is_empty() {
                    return Err(NetError::Protocol(format!(
                        "Finished body of {} bytes",
                        body.len()
                    )));
                }
                Ok(Message::Finished { round })
            }
            t => Err(NetError::Protocol(format!("unknown message type {t}"))),
        }
    }
}

/// Bytes of trace context implied by a frame's version byte.
fn ctx_len_for(version: u8) -> Result<usize, NetError> {
    match version {
        VERSION => Ok(0),
        VERSION_TRACED => Ok(CTX_LEN),
        v => Err(NetError::Protocol(format!("unsupported protocol version {v}"))),
    }
}

/// Counts the mismatch and builds the CRC error (`net.frame.crc_fail`).
fn crc_mismatch(expected: u32, actual: u32) -> NetError {
    telemetry::count("net.frame.crc_fail", 1);
    NetError::Crc { expected, actual }
}

/// Encodes a message into one complete frame (version 1, no trace
/// context) — byte-identical to the original protocol.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_frame_ctx(msg, None)
}

/// Encodes a message into one complete frame, attaching a trace context
/// (version 2) when one is given; without a context the frame is plain
/// version 1.
pub fn encode_frame_ctx(msg: &Message, ctx: Option<&TraceContext>) -> Vec<u8> {
    let body = msg.encode_body();
    let ctx_len = if ctx.is_some() { CTX_LEN } else { 0 };
    let mut frame = Vec::with_capacity(HEADER_LEN + ctx_len + body.len() + TRAILER_LEN);
    frame.extend_from_slice(&MAGIC);
    frame.push(if ctx.is_some() { VERSION_TRACED } else { VERSION });
    frame.push(msg.type_byte());
    frame.extend_from_slice(&msg.round_field().to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    if let Some(ctx) = ctx {
        frame.extend_from_slice(&ctx.to_wire());
    }
    frame.extend_from_slice(&body);
    let crc = crc32(&frame[4..]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Decodes one complete frame (exact length required), discarding any
/// trace context. See [`decode_frame_ctx`].
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on bad magic/version/length,
/// [`NetError::PayloadTooLarge`] when the declared length exceeds
/// `max_payload`, and [`NetError::Crc`] when the trailer does not match
/// the frame contents.
pub fn decode_frame(bytes: &[u8], max_payload: u32) -> Result<Message, NetError> {
    decode_frame_ctx(bytes, max_payload).map(|(msg, _)| msg)
}

/// Decodes one complete frame of either version (exact length
/// required), returning the message and, for version-2 frames, the
/// trace context it carried.
///
/// # Errors
///
/// As [`decode_frame`].
pub fn decode_frame_ctx(
    bytes: &[u8],
    max_payload: u32,
) -> Result<(Message, Option<TraceContext>), NetError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(NetError::Protocol(format!("frame of {} bytes is too short", bytes.len())));
    }
    if bytes[..4] != MAGIC {
        return Err(NetError::Protocol("bad frame magic".into()));
    }
    let ctx_len = ctx_len_for(bytes[4])?;
    let len = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes"));
    if len > max_payload {
        return Err(NetError::PayloadTooLarge { len, cap: max_payload });
    }
    let total = HEADER_LEN + ctx_len + len as usize + TRAILER_LEN;
    if bytes.len() != total {
        return Err(NetError::Protocol(format!(
            "frame of {} bytes, header declares {total}",
            bytes.len()
        )));
    }
    let crc_at = HEADER_LEN + ctx_len + len as usize;
    let expected = u32::from_le_bytes(bytes[crc_at..crc_at + 4].try_into().expect("4 bytes"));
    let actual = crc32(&bytes[4..crc_at]);
    if expected != actual {
        return Err(crc_mismatch(expected, actual));
    }
    let round = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes"));
    let ctx = (ctx_len > 0)
        .then(|| {
            let raw: &[u8; CTX_LEN] =
                bytes[HEADER_LEN..HEADER_LEN + CTX_LEN].try_into().expect("ctx bytes");
            TraceContext::from_wire(raw, round)
        })
        .filter(|c| c.trace_id != 0 || c.parent_span != 0);
    let msg = Message::decode_body(bytes[5], round, &bytes[HEADER_LEN + ctx_len..crc_at])?;
    Ok((msg, ctx))
}

/// Writes one frame to the stream; returns the bytes put on the wire.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<usize, NetError> {
    write_message_ctx(w, msg, None)
}

/// Writes one frame with an optional trace context; returns the bytes
/// put on the wire. Without a context this emits a plain version-1
/// frame ([`write_message`]).
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_message_ctx<W: Write>(
    w: &mut W,
    msg: &Message,
    ctx: Option<&TraceContext>,
) -> Result<usize, NetError> {
    let frame = encode_frame_ctx(msg, ctx);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads one frame from the stream, discarding any trace context. See
/// [`read_message_ctx`].
///
/// # Errors
///
/// Propagates socket errors (including read timeouts) and all
/// [`decode_frame`] validation errors.
pub fn read_message<R: Read>(r: &mut R, max_payload: u32) -> Result<(Message, usize), NetError> {
    read_message_ctx(r, max_payload).map(|(msg, _, n)| (msg, n))
}

/// Reads one frame of either version from the stream; returns the
/// message, the trace context it carried (version 2 only), and the
/// bytes taken off the wire.
///
/// The header is read and validated (magic, version, payload cap)
/// before the payload is allocated, so a hostile length field is
/// rejected with [`NetError::PayloadTooLarge`] without reserving
/// memory for it.
///
/// # Errors
///
/// Propagates socket errors (including read timeouts) and all
/// [`decode_frame`] validation errors.
pub fn read_message_ctx<R: Read>(
    r: &mut R,
    max_payload: u32,
) -> Result<(Message, Option<TraceContext>, usize), NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(NetError::Protocol("bad frame magic".into()));
    }
    let ctx_len = ctx_len_for(header[4])?;
    let len = u32::from_le_bytes(header[10..14].try_into().expect("4 bytes"));
    if len > max_payload {
        return Err(NetError::PayloadTooLarge { len, cap: max_payload });
    }
    let mut rest = vec![0u8; ctx_len + len as usize + TRAILER_LEN];
    r.read_exact(&mut rest)?;
    let crc_at = ctx_len + len as usize;
    let expected = u32::from_le_bytes(rest[crc_at..crc_at + 4].try_into().expect("4 bytes"));
    let mut guarded = Vec::with_capacity(HEADER_LEN - 4 + crc_at);
    guarded.extend_from_slice(&header[4..]);
    guarded.extend_from_slice(&rest[..crc_at]);
    let actual = crc32(&guarded);
    if expected != actual {
        return Err(crc_mismatch(expected, actual));
    }
    let round = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    let ctx = (ctx_len > 0)
        .then(|| {
            let raw: &[u8; CTX_LEN] = rest[..CTX_LEN].try_into().expect("ctx bytes");
            TraceContext::from_wire(raw, round)
        })
        .filter(|c| c.trace_id != 0 || c.parent_span != 0);
    let msg = Message::decode_body(header[5], round, &rest[ctx_len..crc_at])?;
    Ok((msg, ctx, HEADER_LEN + ctx_len + len as usize + TRAILER_LEN))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Hello { client_id: 3 },
            Message::Welcome { client_id: 3, clients: 8, rounds: 20 },
            Message::Global { round: 2, last: false, model: vec![1, 2, 3, 4] },
            Message::Global { round: 20, last: true, model: vec![] },
            Message::Update { round: 2, client_id: 3, steps: 17, model: vec![9; 33] },
            Message::UpdateAck { round: 2, accepted: true },
            Message::UpdateAck { round: 2, accepted: false },
            Message::Finished { round: 19 },
        ]
    }

    #[test]
    fn frame_round_trip_every_type() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            let back = decode_frame(&frame, DEFAULT_MAX_PAYLOAD).expect("decode");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stream_round_trip_preserves_order() {
        let mut buf = Vec::new();
        let mut written = 0;
        for msg in all_messages() {
            written += write_message(&mut buf, &msg).expect("write");
        }
        assert_eq!(written, buf.len());
        let mut cursor = std::io::Cursor::new(buf);
        for msg in all_messages() {
            let (back, _) = read_message(&mut cursor, DEFAULT_MAX_PAYLOAD).expect("read");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let msg = Message::Update { round: 1, client_id: 0, steps: 5, model: vec![7; 64] };
        let clean = encode_frame(&msg);
        // Flip one bit in every guarded position: everything but magic.
        for i in 4..clean.len() - TRAILER_LEN {
            let mut frame = clean.clone();
            frame[i] ^= 0x01;
            let err = decode_frame(&frame, DEFAULT_MAX_PAYLOAD).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    NetError::Crc { .. } | NetError::Protocol(_) | NetError::PayloadTooLarge { .. }
                ),
                "byte {i}: unexpected {err}"
            );
        }
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let msg = Message::Global { round: 0, last: false, model: vec![0; 128] };
        let mut frame = encode_frame(&msg);
        // Declare a 3 GiB payload; the cap must reject it up front.
        frame[10..14].copy_from_slice(&(3u32 << 30).to_le_bytes());
        let err = decode_frame(&frame, DEFAULT_MAX_PAYLOAD).expect_err("must fail");
        assert!(matches!(err, NetError::PayloadTooLarge { .. }), "{err}");
        let mut cursor = std::io::Cursor::new(frame);
        let err = read_message(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("must fail");
        assert!(matches!(err, NetError::PayloadTooLarge { .. }), "{err}");
    }

    #[test]
    fn truncated_stream_errors() {
        let msg = Message::Update { round: 1, client_id: 2, steps: 3, model: vec![1; 50] };
        let frame = encode_frame(&msg);
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 10, frame.len() - 1] {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(read_message(&mut cursor, DEFAULT_MAX_PAYLOAD).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let frame = encode_frame(&Message::Finished { round: 0 });
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad, DEFAULT_MAX_PAYLOAD), Err(NetError::Protocol(_))));
        let mut bad = frame;
        bad[4] = 9;
        assert!(matches!(decode_frame(&bad, DEFAULT_MAX_PAYLOAD), Err(NetError::Protocol(_))));
    }

    fn ctx_for(msg: &Message) -> TraceContext {
        TraceContext {
            trace_id: 0x1234_5678_9abc_def0_0fed_cba9_8765_4321,
            parent_span: 0xdead_beef_cafe,
            round: match msg {
                Message::Global { round, .. }
                | Message::Update { round, .. }
                | Message::UpdateAck { round, .. }
                | Message::Finished { round } => *round as u32,
                _ => 0,
            },
        }
    }

    #[test]
    fn traced_frame_round_trip_every_type() {
        for msg in all_messages() {
            let ctx = ctx_for(&msg);
            let frame = encode_frame_ctx(&msg, Some(&ctx));
            assert_eq!(frame[4], VERSION_TRACED);
            assert_eq!(frame.len(), encode_frame(&msg).len() + CTX_LEN, "fixed 24-byte overhead");
            let (back, back_ctx) = decode_frame_ctx(&frame, DEFAULT_MAX_PAYLOAD).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(back_ctx, Some(ctx));
            // The ctx-oblivious decoder accepts the same frame.
            assert_eq!(decode_frame(&frame, DEFAULT_MAX_PAYLOAD).expect("decode"), msg);
        }
    }

    #[test]
    fn plain_frames_decode_through_the_ctx_api() {
        // Backward compatibility: version-1 bytes carry no context and
        // decode unchanged through the new entry points.
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            assert_eq!(frame[4], VERSION);
            let (back, ctx) = decode_frame_ctx(&frame, DEFAULT_MAX_PAYLOAD).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(ctx, None);
        }
    }

    #[test]
    fn traced_stream_round_trip() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            let ctx = ctx_for(&msg);
            write_message_ctx(&mut buf, &msg, Some(&ctx)).expect("write");
            write_message(&mut buf, &msg).expect("write plain");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in all_messages() {
            let (back, ctx, _) = read_message_ctx(&mut cursor, DEFAULT_MAX_PAYLOAD).expect("read");
            assert_eq!(back, msg);
            assert_eq!(ctx, Some(ctx_for(&msg)));
            // Mixed streams work: a plain frame follows a traced one.
            let (back, ctx, _) = read_message_ctx(&mut cursor, DEFAULT_MAX_PAYLOAD).expect("read");
            assert_eq!(back, msg);
            assert_eq!(ctx, None);
        }
    }

    #[test]
    fn corrupted_traced_frame_fails_crc() {
        let msg = Message::Update { round: 1, client_id: 0, steps: 5, model: vec![7; 64] };
        let clean = encode_frame_ctx(&msg, Some(&ctx_for(&msg)));
        // Every guarded byte, including the 24 context bytes.
        for i in 4..clean.len() - TRAILER_LEN {
            let mut frame = clean.clone();
            frame[i] ^= 0x01;
            let err = decode_frame_ctx(&frame, DEFAULT_MAX_PAYLOAD).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    NetError::Crc { .. } | NetError::Protocol(_) | NetError::PayloadTooLarge { .. }
                ),
                "byte {i}: unexpected {err}"
            );
        }
    }

    #[test]
    fn zeroed_context_decodes_as_none() {
        let msg = Message::Finished { round: 3 };
        let ctx = TraceContext { trace_id: 0, parent_span: 0, round: 3 };
        let frame = encode_frame_ctx(&msg, Some(&ctx));
        let (_, back) = decode_frame_ctx(&frame, DEFAULT_MAX_PAYLOAD).expect("decode");
        assert_eq!(back, None, "all-zero context means no trace");
    }
}
