//! Errors of the networked runtime.

use std::fmt;
use std::io;

use rhychee_core::FlError;
use rhychee_fhe::FheError;

/// Errors raised by the wire protocol and the TCP endpoints.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// An underlying socket operation failed (includes read/write
    /// timeouts, surfaced as `TimedOut`/`WouldBlock`).
    Io(io::Error),
    /// The peer violated the wire protocol (bad magic, unknown version
    /// or message type, malformed body, unexpected message).
    Protocol(String),
    /// A frame arrived with a CRC that does not match its contents.
    Crc {
        /// CRC-32 declared in the frame trailer.
        expected: u32,
        /// CRC-32 computed over the received bytes.
        actual: u32,
    },
    /// A frame declared a payload longer than the negotiated cap —
    /// rejected before allocating.
    PayloadTooLarge {
        /// Declared payload length.
        len: u32,
        /// Maximum the endpoint accepts.
        cap: u32,
    },
    /// The round deadline passed with fewer updates than the quorum.
    QuorumNotReached {
        /// The round that failed to close.
        round: usize,
        /// Updates accepted before the deadline.
        received: usize,
        /// Minimum updates required.
        quorum: usize,
    },
    /// The server's streaming aggregation broke an invariant mid-round
    /// and abandoned the fold — distinct from a per-upload NACK, which
    /// rejects one upload and leaves the round running.
    StreamingAbort {
        /// The round whose streamed sum can no longer be trusted.
        round: usize,
        /// What went wrong.
        reason: String,
    },
    /// An FHE operation (ciphertext codec, aggregation) failed.
    Fhe(FheError),
    /// A framework-level operation (training setup, aggregation) failed.
    Fl(FlError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Crc { expected, actual } => {
                write!(f, "frame CRC mismatch: declared {expected:#010x}, computed {actual:#010x}")
            }
            NetError::PayloadTooLarge { len, cap } => {
                write!(f, "declared payload of {len} bytes exceeds the {cap}-byte cap")
            }
            NetError::QuorumNotReached { round, received, quorum } => write!(
                f,
                "round {round}: only {received} update(s) before the deadline (quorum {quorum})"
            ),
            NetError::StreamingAbort { round, reason } => {
                write!(f, "round {round}: streaming aggregation aborted: {reason}")
            }
            NetError::Fhe(e) => write!(f, "FHE failure: {e}"),
            NetError::Fl(e) => write!(f, "framework failure: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Fhe(e) => Some(e),
            NetError::Fl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FheError> for NetError {
    fn from(e: FheError) -> Self {
        NetError::Fhe(e)
    }
}

impl From<FlError> for NetError {
    fn from(e: FlError) -> Self {
        NetError::Fl(e)
    }
}

impl NetError {
    /// True when the error is a socket timeout (the deadline-driven
    /// paths treat these as "no data yet", not hard failures).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
        )
    }
}
