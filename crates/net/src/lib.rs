//! # Rhychee-FL networked runtime
//!
//! A real client/server deployment of the paper's system model: clients
//! train hyperdimensional models locally, encrypt them under a shared
//! CKKS key, and upload over TCP; the server homomorphically averages
//! the ciphertexts (paper Eq. 2) and broadcasts the aggregate — it
//! never holds key material and never sees a plaintext model.
//!
//! Layers:
//!
//! * [`wire`] — length-prefixed, versioned, CRC-guarded binary frames
//! * [`codec`] — model payload encoding (plaintext / CKKS / LWE); the
//!   sealed [`WireCodec`] trait selects the CKKS wire format
//!   ([`CanonicalCodec`] / [`SeededCodec`]) and offers both owning
//!   decode and zero-copy [`ModelView`] parsing
//! * [`server`] — [`FlServer`]: thread-per-connection collection with
//!   quorum-based straggler tolerance; under CKKS, uploads stream into
//!   the running encrypted sum as frames arrive (O(1) server memory in
//!   client count, bit-identical to the batch reference path)
//! * [`client`] — [`FlClient`]: connect/upload with bounded retry and
//!   local decryption of each global model
//! * [`error`] — [`NetError`]
//!
//! Both endpoints are built from the same round primitives as the
//! in-process [`Framework`](rhychee_core::Framework)
//! ([`rhychee_core::round`]), and all randomness is derived from the
//! run seed, so a networked federation reproduces the in-process
//! global model **bit for bit** under the same configuration.
//!
//! # Examples
//!
//! ```no_run
//! use std::thread;
//! use rhychee_core::round::{self, FedSetup};
//! use rhychee_core::FlConfig;
//! use rhychee_data::{DatasetKind, SyntheticConfig};
//! use rhychee_fhe::params::CkksParams;
//! use rhychee_net::{ClientConfig, ClientPipeline, FlClient, FlServer, ServerConfig, ServerPipeline};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticConfig::small(DatasetKind::Har).generate(3)?;
//! let fl = FlConfig::builder().clients(4).rounds(3).hd_dim(256).seed(7).build()?;
//! let FedSetup { shards, test, classes } = round::prepare(&fl, &data)?;
//!
//! let num_params = classes * fl.hd_dim;
//! let server = FlServer::bind(
//!     "127.0.0.1:0",
//!     ServerConfig::builder().clients(4).rounds(3).model_params(num_params).build()?,
//!     ServerPipeline::Ckks(CkksParams::toy()),
//! )?;
//! let addr = server.local_addr()?;
//! let server = thread::spawn(move || server.run());
//!
//! let mut clients = Vec::new();
//! for (id, shard) in shards.into_iter().enumerate() {
//!     let local = round::ClientLocal::new(id, shard, classes, &fl);
//!     let eval = if id == 0 { Some(test.clone()) } else { None };
//!     let client = FlClient::new(
//!         ClientConfig::new(addr), fl.clone(), local, classes, eval,
//!         ClientPipeline::Ckks(CkksParams::toy()),
//!     )?;
//!     clients.push(thread::spawn(move || client.run()));
//! }
//! for c in clients { c.join().unwrap()?; }
//! server.join().unwrap()?;
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod codec;
pub mod error;
mod residency;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientPipeline, ClientReport, FlClient};
pub use codec::{CanonicalCodec, ModelView, SeededCodec, WireCodec};
pub use error::NetError;
pub use server::{
    FlServer, NetRoundReport, ServerConfig, ServerConfigBuilder, ServerPipeline, ServerReport,
};
pub use wire::{Message, DEFAULT_MAX_PAYLOAD};
