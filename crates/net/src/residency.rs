//! Resident-upload admission control for streaming aggregation.
//!
//! A counting semaphore bounds how many raw (undecoded) uploads may be
//! resident in server memory at once
//! ([`ServerConfigBuilder::max_resident_uploads`]): handler threads
//! acquire a permit *before* copying an update frame out of the kernel,
//! so excess uploads wait in TCP backpressure rather than server
//! buffers. Permits are RAII — they travel with the raw payload bytes
//! and free their slot when the payload drops, whether that is right
//! after a successful fold or on the NACK/reject path.
//!
//! Beyond the slot count, each permit can be charged with the byte size
//! of the payload it escorts ([`ResidencyPermit::track_bytes`]); the
//! aggregate feeds the `net.resident_uploads` entry of the memory
//! breakdown and the `net.agg.resident_upload_bytes` gauge, so the
//! observability plane can show exactly how much upload payload is in
//! flight at any instant.
//!
//! [`ServerConfigBuilder::max_resident_uploads`]: crate::server::ServerConfigBuilder::max_resident_uploads

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rhychee_telemetry as telemetry;

/// Process-wide bytes of raw upload payloads currently escorted by a
/// residency permit, for the memory-source registry (which needs a
/// static callback; per-instance figures live in [`ResidencyState`]).
static RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);

/// Bytes of raw upload payloads currently resident, process-wide.
pub(crate) fn resident_bytes() -> u64 {
    RESIDENT_BYTES.load(Ordering::Relaxed)
}

#[derive(Debug, Default)]
struct ResidencyState {
    /// Permits currently held.
    held: usize,
    /// High-water mark of concurrently held permits.
    peak: usize,
    /// Payload bytes charged to live permits of this instance.
    bytes: u64,
    /// High-water mark of `bytes`.
    peak_bytes: u64,
}

/// Counting semaphore bounding how many raw uploads are resident at
/// once. Tracks the high-water mark for the
/// `net.agg.peak_resident_uploads` gauge and per-payload byte charges
/// for the memory breakdown.
pub(crate) struct Residency {
    cap: usize,
    state: Mutex<ResidencyState>,
    freed: Condvar,
}

impl Residency {
    pub(crate) fn new(cap: usize) -> Arc<Residency> {
        assert!(cap > 0, "residency cap must be positive");
        telemetry::mem::register_source("net.resident_uploads", resident_bytes);
        Arc::new(Residency {
            cap,
            state: Mutex::new(ResidencyState::default()),
            freed: Condvar::new(),
        })
    }

    /// Blocks until a slot frees, then claims it.
    pub(crate) fn acquire(self: &Arc<Residency>) -> ResidencyPermit {
        let mut state = self.state.lock().expect("residency state");
        while state.held >= self.cap {
            state = self.freed.wait(state).expect("residency state");
        }
        state.held += 1;
        state.peak = state.peak.max(state.held);
        ResidencyPermit { residency: Arc::clone(self), bytes: 0 }
    }

    /// Permits currently held.
    pub(crate) fn held(&self) -> usize {
        self.state.lock().expect("residency state").held
    }

    /// High-water mark of concurrently resident uploads so far.
    pub(crate) fn peak(&self) -> usize {
        self.state.lock().expect("residency state").peak
    }

    /// Payload bytes currently charged to this instance's live permits.
    pub(crate) fn bytes(&self) -> u64 {
        self.state.lock().expect("residency state").bytes
    }

    /// High-water mark of concurrently charged payload bytes.
    pub(crate) fn peak_bytes(&self) -> u64 {
        self.state.lock().expect("residency state").peak_bytes
    }
}

/// RAII slot from [`Residency::acquire`]; travels with the raw payload
/// and frees the slot (and any charged bytes) when the payload is
/// dropped — the fold path and the NACK path release identically.
pub(crate) struct ResidencyPermit {
    residency: Arc<Residency>,
    bytes: u64,
}

impl ResidencyPermit {
    /// Charges the byte size of the payload this permit escorts. Called
    /// once, right after the frame is read; the charge is released when
    /// the permit drops.
    pub(crate) fn track_bytes(&mut self, n: u64) {
        let delta = n - self.bytes; // idempotent against re-charging
        self.bytes = n;
        RESIDENT_BYTES.fetch_add(delta, Ordering::Relaxed);
        let mut state = self.residency.state.lock().expect("residency state");
        state.bytes += delta;
        state.peak_bytes = state.peak_bytes.max(state.bytes);
    }
}

impl Drop for ResidencyPermit {
    fn drop(&mut self) {
        RESIDENT_BYTES.fetch_sub(self.bytes, Ordering::Relaxed);
        let mut state = self.residency.state.lock().expect("residency state");
        state.held -= 1;
        state.bytes -= self.bytes;
        drop(state);
        self.residency.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    use super::*;

    #[test]
    fn permits_are_bounded_and_every_waiter_eventually_acquires() {
        let residency = Residency::new(2);
        let mut joins = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&residency);
            joins.push(thread::spawn(move || {
                let permit = r.acquire();
                assert!(r.held() <= 2, "cap violated: {} held", r.held());
                thread::sleep(Duration::from_millis(2));
                drop(permit);
            }));
        }
        for j in joins {
            j.join().expect("no waiter starved");
        }
        assert_eq!(residency.held(), 0);
        assert!(residency.peak() >= 1 && residency.peak() <= 2, "peak {}", residency.peak());
    }

    #[test]
    fn acquire_blocks_at_cap_until_a_release() {
        let residency = Residency::new(1);
        let first = residency.acquire();
        let (tx, rx) = mpsc::channel();
        let r = Arc::clone(&residency);
        let waiter = thread::spawn(move || {
            let permit = r.acquire();
            tx.send(()).expect("report acquisition");
            drop(permit);
        });
        // The waiter must be parked while the first permit is held —
        // exactly the peek-before-acquire contract: a handler that has
        // not yet been granted a slot makes no progress.
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "second acquire went through while at cap"
        );
        drop(first);
        rx.recv_timeout(Duration::from_secs(5)).expect("waiter unblocked by the release");
        waiter.join().expect("waiter thread");
        assert_eq!(residency.peak(), 1, "cap 1 means the peak can never exceed 1");
    }

    #[test]
    fn nack_path_releases_slot_and_bytes() {
        // A NACKed upload drops its Raw event — payload and permit —
        // without ever folding; the slot and the byte charge must both
        // come back.
        let residency = Residency::new(4);
        let mut permit = residency.acquire();
        permit.track_bytes(1 << 20);
        assert_eq!(residency.bytes(), 1 << 20);
        assert_eq!(residency.held(), 1);
        drop(permit); // the NACK: no fold ever happened
        assert_eq!(residency.bytes(), 0, "byte charge released on NACK");
        assert_eq!(residency.held(), 0, "slot released on NACK");
        assert_eq!(residency.peak_bytes(), 1 << 20, "high-water mark survives the release");
    }

    #[test]
    fn byte_charges_aggregate_across_permits() {
        let residency = Residency::new(4);
        let mut a = residency.acquire();
        let mut b = residency.acquire();
        a.track_bytes(100);
        b.track_bytes(250);
        assert_eq!(residency.bytes(), 350);
        assert!(resident_bytes() >= 350, "global mirror covers this instance");
        drop(a);
        assert_eq!(residency.bytes(), 250);
        drop(b);
        assert_eq!(residency.bytes(), 0);
        assert_eq!(residency.peak(), 2);
        assert_eq!(residency.peak_bytes(), 350);
    }
}
