//! Interior encoding of model payloads carried by [`Message::Global`]
//! and [`Message::Update`] frames.
//!
//! A payload starts with a one-byte tag:
//!
//! | tag | contents |
//! |----:|----------|
//! | 0   | plaintext: `count: u32` then `count` LE `f32` parameters |
//! | 1   | CKKS: `count: u32` then `count` × (`len: u32`, [`CkksContext::serialize`] bytes) |
//! | 2   | LWE: `scale: f64`, `count: u32`, then `count` × [`LweContext::serialize`] bytes |
//! | 3   | seeded CKKS: `count: u32` then `count` × (`len: u32`, [`CkksContext::serialize_seeded`] bytes) |
//!
//! Every declared count is validated against a caller-supplied cap
//! before allocation, and the ciphertext codecs (hardened in
//! `rhychee-fhe`) reject length mismatches, so a malformed payload
//! costs at most one bounded allocation.
//!
//! The two ciphertext wire formats are unified behind the sealed
//! [`WireCodec`] trait — [`CanonicalCodec`] (tag 1) and [`SeededCodec`]
//! (tag 3) — selected via
//! [`ServerConfigBuilder::codec`](crate::server::ServerConfigBuilder::codec)
//! and [`ClientConfig::codec`](crate::client::ClientConfig::codec).
//! Each codec offers both an owning decode ([`WireCodec::decode_upload`],
//! the batch reference path) and a borrowing parse
//! ([`WireCodec::parse_upload`], the streaming path): the latter returns
//! a [`ModelView`] of zero-copy [`CtView`]s over the payload bytes,
//! validated with the exact same count/length caps, which the server
//! folds straight into its running encrypted sum.
//!
//! [`Message::Global`]: crate::wire::Message::Global
//! [`Message::Update`]: crate::wire::Message::Update

use std::fmt;

use rhychee_fhe::ckks::{CkksCiphertext, CkksContext, CtView};
use rhychee_fhe::lwe::{LweCiphertext, LweContext};

use crate::error::NetError;

mod sealed {
    /// Seals [`WireCodec`](super::WireCodec): the codec set is fixed by
    /// the wire protocol's tag space, so downstream crates select a
    /// codec rather than implement one.
    pub trait Sealed {}
}

/// Payload tag for plaintext `f32` parameters.
pub const TAG_PLAIN: u8 = 0;
/// Payload tag for packed CKKS ciphertexts.
pub const TAG_CKKS: u8 = 1;
/// Payload tag for per-parameter LWE ciphertexts.
pub const TAG_LWE: u8 = 2;
/// Payload tag for seed-compressed CKKS ciphertexts (fresh symmetric
/// encryptions whose `c1` is replaced by a 32-byte expansion seed).
pub const TAG_CKKS_SEEDED: u8 = 3;

fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], NetError> {
    let slice = bytes
        .get(*at..*at + n)
        .ok_or_else(|| NetError::Protocol(format!("model payload truncated at byte {}", *at)))?;
    *at += n;
    Ok(slice)
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, NetError> {
    Ok(u32::from_le_bytes(take(bytes, at, 4)?.try_into().expect("4 bytes")))
}

fn expect_tag(bytes: &[u8], want: u8, name: &str) -> Result<(), NetError> {
    match bytes.first() {
        Some(&t) if t == want => Ok(()),
        Some(&t) => {
            Err(NetError::Protocol(format!("expected {name} payload (tag {want}), got tag {t}")))
        }
        None => Err(NetError::Protocol("empty model payload".into())),
    }
}

fn check_done(bytes: &[u8], at: usize) -> Result<(), NetError> {
    if at != bytes.len() {
        return Err(NetError::Protocol(format!(
            "{} trailing byte(s) after model payload",
            bytes.len() - at
        )));
    }
    Ok(())
}

/// Encodes a plaintext parameter vector.
pub fn encode_plain(params: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + params.len() * 4);
    out.push(TAG_PLAIN);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for &v in params {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a plaintext parameter vector of at most `max_params` values.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a wrong tag, a count above
/// `max_params`, or a length that does not match the declared count.
pub fn decode_plain(bytes: &[u8], max_params: usize) -> Result<Vec<f32>, NetError> {
    expect_tag(bytes, TAG_PLAIN, "plaintext")?;
    let mut at = 1;
    let count = take_u32(bytes, &mut at)? as usize;
    if count > max_params {
        return Err(NetError::Protocol(format!(
            "plaintext payload declares {count} parameters, cap is {max_params}"
        )));
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        params.push(f32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().expect("4 bytes")));
    }
    check_done(bytes, at)?;
    Ok(params)
}

/// Encodes packed CKKS ciphertexts under the given context.
pub fn encode_ckks(ctx: &CkksContext, cts: &[CkksCiphertext]) -> Vec<u8> {
    let mut out = vec![TAG_CKKS];
    out.extend_from_slice(&(cts.len() as u32).to_le_bytes());
    for ct in cts {
        let bytes = ctx.serialize(ct);
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decodes at most `max_cts` packed CKKS ciphertexts.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on structural errors and
/// [`NetError::Fhe`] when a ciphertext fails the hardened
/// [`CkksContext::deserialize`] (truncation, oversizing, bad levels).
pub fn decode_ckks(
    ctx: &CkksContext,
    bytes: &[u8],
    max_cts: usize,
) -> Result<Vec<CkksCiphertext>, NetError> {
    expect_tag(bytes, TAG_CKKS, "CKKS")?;
    let mut at = 1;
    let count = take_u32(bytes, &mut at)? as usize;
    if count > max_cts {
        return Err(NetError::Protocol(format!(
            "CKKS payload declares {count} ciphertexts, cap is {max_cts}"
        )));
    }
    // A declared per-ciphertext length can never exceed the full-level
    // serialized size, so bound allocations by it.
    let max_ct_len = ctx.serialized_len(ctx.primes().len());
    let mut cts = Vec::with_capacity(count);
    for i in 0..count {
        let len = take_u32(bytes, &mut at)? as usize;
        if len > max_ct_len {
            return Err(NetError::Protocol(format!(
                "ciphertext {i} declares {len} bytes, max is {max_ct_len}"
            )));
        }
        cts.push(ctx.deserialize(take(bytes, &mut at, len)?)?);
    }
    check_done(bytes, at)?;
    Ok(cts)
}

/// Encodes seed-compressed CKKS ciphertexts under the given context.
///
/// Only fresh symmetric encryptions carry an expansion seed; roughly
/// half the bytes of [`encode_ckks`] for the same ciphertexts.
///
/// # Errors
///
/// Returns [`NetError::Fhe`] if any ciphertext carries no seed
/// (i.e. was not produced by symmetric encryption, or has been
/// operated on since).
pub fn encode_ckks_seeded(ctx: &CkksContext, cts: &[CkksCiphertext]) -> Result<Vec<u8>, NetError> {
    let mut out = vec![TAG_CKKS_SEEDED];
    out.extend_from_slice(&(cts.len() as u32).to_le_bytes());
    for ct in cts {
        let bytes = ctx.serialize_seeded(ct)?;
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    Ok(out)
}

/// Decodes at most `max_cts` seed-compressed CKKS ciphertexts,
/// re-expanding each `c1` from its transmitted seed.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on structural errors and
/// [`NetError::Fhe`] when a ciphertext fails the hardened
/// [`CkksContext::deserialize_seeded`] (truncation, oversizing, bad
/// levels, or a corrupted seed caught by its integrity digest).
pub fn decode_ckks_seeded(
    ctx: &CkksContext,
    bytes: &[u8],
    max_cts: usize,
) -> Result<Vec<CkksCiphertext>, NetError> {
    expect_tag(bytes, TAG_CKKS_SEEDED, "seeded CKKS")?;
    let mut at = 1;
    let count = take_u32(bytes, &mut at)? as usize;
    if count > max_cts {
        return Err(NetError::Protocol(format!(
            "seeded CKKS payload declares {count} ciphertexts, cap is {max_cts}"
        )));
    }
    let max_ct_len = ctx.serialized_len_seeded(ctx.primes().len());
    let mut cts = Vec::with_capacity(count);
    for i in 0..count {
        let len = take_u32(bytes, &mut at)? as usize;
        if len > max_ct_len {
            return Err(NetError::Protocol(format!(
                "seeded ciphertext {i} declares {len} bytes, max is {max_ct_len}"
            )));
        }
        cts.push(ctx.deserialize_seeded(take(bytes, &mut at, len)?)?);
    }
    check_done(bytes, at)?;
    Ok(cts)
}

/// A borrowed, validated view of one upload's ciphertexts — the
/// streaming counterpart of the `Vec<CkksCiphertext>` that
/// [`decode_ckks`] / [`decode_ckks_seeded`] return. Holds one zero-copy
/// [`CtView`] per model chunk over the payload bytes; nothing is
/// deserialized until the views are folded into an accumulator.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ModelView<'a> {
    views: Vec<CtView<'a>>,
}

impl<'a> ModelView<'a> {
    /// One view per packed model chunk, in chunk order.
    pub fn views(&self) -> &[CtView<'a>] {
        &self.views
    }

    /// Number of ciphertext chunks in the upload.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the payload declared zero ciphertexts.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// Parses at most `max_cts` packed CKKS ciphertexts into zero-copy
/// views — the borrowing counterpart of [`decode_ckks`], with the same
/// count and per-ciphertext length caps and the same structural
/// validation (every view is header-checked on construction).
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on structural errors and
/// [`NetError::Fhe`] when a ciphertext fails
/// [`CkksContext::view_serialized`] validation.
pub fn parse_ckks_views<'a>(
    ctx: &CkksContext,
    bytes: &'a [u8],
    max_cts: usize,
) -> Result<ModelView<'a>, NetError> {
    expect_tag(bytes, TAG_CKKS, "CKKS")?;
    let mut at = 1;
    let count = take_u32(bytes, &mut at)? as usize;
    if count > max_cts {
        return Err(NetError::Protocol(format!(
            "CKKS payload declares {count} ciphertexts, cap is {max_cts}"
        )));
    }
    let max_ct_len = ctx.serialized_len(ctx.primes().len());
    let mut views = Vec::with_capacity(count);
    for i in 0..count {
        let len = take_u32(bytes, &mut at)? as usize;
        if len > max_ct_len {
            return Err(NetError::Protocol(format!(
                "ciphertext {i} declares {len} bytes, max is {max_ct_len}"
            )));
        }
        views.push(ctx.view_serialized(take(bytes, &mut at, len)?)?);
    }
    check_done(bytes, at)?;
    Ok(ModelView { views })
}

/// Parses at most `max_cts` seed-compressed CKKS ciphertexts into
/// zero-copy views — the borrowing counterpart of
/// [`decode_ckks_seeded`], including the seed integrity check.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on structural errors and
/// [`NetError::Fhe`] when a ciphertext fails
/// [`CkksContext::view_serialized_seeded`] validation (truncation,
/// oversizing, bad levels, or a corrupted seed).
pub fn parse_ckks_seeded_views<'a>(
    ctx: &CkksContext,
    bytes: &'a [u8],
    max_cts: usize,
) -> Result<ModelView<'a>, NetError> {
    expect_tag(bytes, TAG_CKKS_SEEDED, "seeded CKKS")?;
    let mut at = 1;
    let count = take_u32(bytes, &mut at)? as usize;
    if count > max_cts {
        return Err(NetError::Protocol(format!(
            "seeded CKKS payload declares {count} ciphertexts, cap is {max_cts}"
        )));
    }
    let max_ct_len = ctx.serialized_len_seeded(ctx.primes().len());
    let mut views = Vec::with_capacity(count);
    for i in 0..count {
        let len = take_u32(bytes, &mut at)? as usize;
        if len > max_ct_len {
            return Err(NetError::Protocol(format!(
                "seeded ciphertext {i} declares {len} bytes, max is {max_ct_len}"
            )));
        }
        views.push(ctx.view_serialized_seeded(take(bytes, &mut at, len)?)?);
    }
    check_done(bytes, at)?;
    Ok(ModelView { views })
}

/// One CKKS wire format, as selected per endpoint: how uploads are
/// encoded by clients and decoded — or zero-copy parsed — by the
/// server, and how the client-side encryption must produce them.
///
/// Sealed: the implementations are exactly [`CanonicalCodec`] and
/// [`SeededCodec`], matching the wire protocol's tag space. Select one
/// with [`ServerConfigBuilder::codec`] / [`ClientConfig::codec`]; both
/// endpoints of a federation must agree.
///
/// [`ServerConfigBuilder::codec`]: crate::server::ServerConfigBuilder::codec
/// [`ClientConfig::codec`]: crate::client::ClientConfig
pub trait WireCodec: sealed::Sealed + Send + Sync + fmt::Debug {
    /// Stable short name (`"canonical"` / `"seeded"`), for logs.
    fn name(&self) -> &'static str;

    /// Whether clients must encrypt uploads symmetrically: only fresh
    /// symmetric encryptions carry the expansion seed the seeded wire
    /// format transmits in place of `c1`.
    fn symmetric(&self) -> bool;

    /// Encodes one upload's ciphertexts.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Fhe`] when a ciphertext cannot be expressed
    /// in this wire format (e.g. a seedless ciphertext under
    /// [`SeededCodec`]).
    fn encode_upload(&self, ctx: &CkksContext, cts: &[CkksCiphertext])
        -> Result<Vec<u8>, NetError>;

    /// Decodes an upload into owned ciphertexts — the batch reference
    /// path, kept selectable alongside streaming.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Protocol`] on structural errors and
    /// [`NetError::Fhe`] on ciphertext-level validation failures.
    fn decode_upload(
        &self,
        ctx: &CkksContext,
        bytes: &[u8],
        max_cts: usize,
    ) -> Result<Vec<CkksCiphertext>, NetError>;

    /// Parses an upload into zero-copy views for streaming aggregation,
    /// applying the same caps and validation as
    /// [`WireCodec::decode_upload`] without materializing ciphertexts.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Protocol`] on structural errors and
    /// [`NetError::Fhe`] on view validation failures.
    fn parse_upload<'a>(
        &self,
        ctx: &CkksContext,
        bytes: &'a [u8],
        max_cts: usize,
    ) -> Result<ModelView<'a>, NetError>;

    /// Encodes a server→client broadcast. Always canonical: aggregates
    /// are not fresh encryptions, so they carry no expansion seed.
    fn encode_broadcast(&self, ctx: &CkksContext, cts: &[CkksCiphertext]) -> Vec<u8> {
        encode_ckks(ctx, cts)
    }
}

/// The canonical CKKS wire format (tag 1): full `(c0, c1)` bytes,
/// public-key client encryption. The default codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanonicalCodec;

impl sealed::Sealed for CanonicalCodec {}

impl WireCodec for CanonicalCodec {
    fn name(&self) -> &'static str {
        "canonical"
    }

    fn symmetric(&self) -> bool {
        false
    }

    fn encode_upload(
        &self,
        ctx: &CkksContext,
        cts: &[CkksCiphertext],
    ) -> Result<Vec<u8>, NetError> {
        Ok(encode_ckks(ctx, cts))
    }

    fn decode_upload(
        &self,
        ctx: &CkksContext,
        bytes: &[u8],
        max_cts: usize,
    ) -> Result<Vec<CkksCiphertext>, NetError> {
        decode_ckks(ctx, bytes, max_cts)
    }

    fn parse_upload<'a>(
        &self,
        ctx: &CkksContext,
        bytes: &'a [u8],
        max_cts: usize,
    ) -> Result<ModelView<'a>, NetError> {
        parse_ckks_views(ctx, bytes, max_cts)
    }
}

/// The seed-compressed CKKS wire format (tag 3): symmetric fresh
/// encryptions whose `c1` travels as a 32-byte expansion seed, roughly
/// halving upload bytes. Broadcasts stay canonical.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeededCodec;

impl sealed::Sealed for SeededCodec {}

impl WireCodec for SeededCodec {
    fn name(&self) -> &'static str {
        "seeded"
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn encode_upload(
        &self,
        ctx: &CkksContext,
        cts: &[CkksCiphertext],
    ) -> Result<Vec<u8>, NetError> {
        encode_ckks_seeded(ctx, cts)
    }

    fn decode_upload(
        &self,
        ctx: &CkksContext,
        bytes: &[u8],
        max_cts: usize,
    ) -> Result<Vec<CkksCiphertext>, NetError> {
        decode_ckks_seeded(ctx, bytes, max_cts)
    }

    fn parse_upload<'a>(
        &self,
        ctx: &CkksContext,
        bytes: &'a [u8],
        max_cts: usize,
    ) -> Result<ModelView<'a>, NetError> {
        parse_ckks_seeded_views(ctx, bytes, max_cts)
    }
}

/// Encodes per-parameter LWE ciphertexts plus their shared quantization
/// scale under the given context.
pub fn encode_lwe(ctx: &LweContext, scale: f64, cts: &[LweCiphertext]) -> Vec<u8> {
    let ct_len = ctx.serialized_len();
    let mut out = Vec::with_capacity(13 + cts.len() * ct_len);
    out.push(TAG_LWE);
    out.extend_from_slice(&scale.to_le_bytes());
    out.extend_from_slice(&(cts.len() as u32).to_le_bytes());
    for ct in cts {
        out.extend_from_slice(&ctx.serialize(ct));
    }
    out
}

/// Decodes at most `max_cts` LWE ciphertexts and their scale.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on structural errors (including a
/// non-finite or non-positive scale) and [`NetError::Fhe`] when a
/// ciphertext fails [`LweContext::deserialize`].
pub fn decode_lwe(
    ctx: &LweContext,
    bytes: &[u8],
    max_cts: usize,
) -> Result<(f64, Vec<LweCiphertext>), NetError> {
    expect_tag(bytes, TAG_LWE, "LWE")?;
    let mut at = 1;
    let scale = f64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().expect("8 bytes"));
    if !scale.is_finite() || scale <= 0.0 {
        return Err(NetError::Protocol(format!("invalid LWE quantization scale {scale}")));
    }
    let count = take_u32(bytes, &mut at)? as usize;
    if count > max_cts {
        return Err(NetError::Protocol(format!(
            "LWE payload declares {count} ciphertexts, cap is {max_cts}"
        )));
    }
    let ct_len = ctx.serialized_len();
    let mut cts = Vec::with_capacity(count);
    for _ in 0..count {
        cts.push(ctx.deserialize(take(bytes, &mut at, ct_len)?)?);
    }
    check_done(bytes, at)?;
    Ok((scale, cts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rhychee_fhe::params::{CkksParams, LweParams};

    #[test]
    fn plain_round_trip_and_caps() {
        let params: Vec<f32> = (0..300).map(|i| (i as f32).sin()).collect();
        let bytes = encode_plain(&params);
        assert_eq!(decode_plain(&bytes, 300).expect("decode"), params);
        assert!(decode_plain(&bytes, 299).is_err(), "count above cap");
        assert!(decode_plain(&bytes[..bytes.len() - 1], 300).is_err(), "truncated");
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_plain(&padded, 300).is_err(), "trailing bytes");
    }

    #[test]
    fn ckks_round_trip_and_corruption() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(7);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let values = vec![0.5; 100];
        let cts = vec![ctx.encrypt(&pk, &values, &mut rng).expect("encrypt")];
        let bytes = encode_ckks(&ctx, &cts);
        let back = decode_ckks(&ctx, &bytes, 4).expect("decode");
        let decrypted = ctx.decrypt(&sk, &back[0]);
        assert!((decrypted[0] - 0.5).abs() < 1e-3);
        assert!(decode_ckks(&ctx, &bytes, 0).is_err(), "count above cap");
        assert!(decode_ckks(&ctx, &bytes[..bytes.len() / 2], 4).is_err(), "truncated");
        // An oversized declared ciphertext length must be caught.
        let mut bad = bytes.clone();
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_ckks(&ctx, &bad, 4).is_err());
    }

    #[test]
    fn seeded_ckks_round_trip_caps_and_corruption() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(11);
        let (sk, _) = ctx.generate_keys(&mut rng);
        let values = vec![0.75; 100];
        let cts: Vec<CkksCiphertext> = (0..2)
            .map(|_| ctx.encrypt_symmetric(&sk, &values, &mut rng).expect("encrypt"))
            .collect();
        let bytes = encode_ckks_seeded(&ctx, &cts).expect("encode");
        // ~2× smaller than the canonical encoding of the same payload.
        let canonical = encode_ckks(&ctx, &cts);
        assert!(bytes.len() * 2 < canonical.len() + 256, "{} vs {}", bytes.len(), canonical.len());
        let back = decode_ckks_seeded(&ctx, &bytes, 2).expect("decode");
        let decrypted = ctx.decrypt(&sk, &back[0]);
        assert!((decrypted[0] - 0.75).abs() < 1e-3);
        assert!(decode_ckks_seeded(&ctx, &bytes, 1).is_err(), "count above cap");
        assert!(decode_ckks_seeded(&ctx, &bytes[..bytes.len() / 2], 2).is_err(), "truncated");
        let mut bad = bytes.clone();
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_ckks_seeded(&ctx, &bad, 2).is_err(), "oversized declared length");
        // A flipped seed byte must be caught by the integrity digest,
        // not silently re-expand to an unrelated ciphertext.
        let mut flipped = bytes.clone();
        flipped[9 + 10] ^= 0x40; // inside the first ciphertext's header/seed
        assert!(decode_ckks_seeded(&ctx, &flipped, 2).is_err(), "corrupted seed");
        // Canonical decoder must refuse the seeded tag and vice versa.
        assert!(decode_ckks(&ctx, &bytes, 2).is_err());
        assert!(decode_ckks_seeded(&ctx, &encode_ckks(&ctx, &cts), 2).is_err());
        // Public-key ciphertexts carry no seed: encoding must error.
        let (_, pk) = ctx.generate_keys(&mut StdRng::seed_from_u64(12));
        let pk_ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        assert!(encode_ckks_seeded(&ctx, &[pk_ct]).is_err());
    }

    #[test]
    fn lwe_round_trip_and_validation() {
        let ctx = LweContext::new(LweParams::tfhe1()).expect("params");
        let mut rng = StdRng::seed_from_u64(9);
        let sk = ctx.generate_key(&mut rng);
        let cts: Vec<LweCiphertext> =
            (0..5).map(|m| ctx.encrypt(&sk, m, &mut rng).expect("encrypt")).collect();
        let bytes = encode_lwe(&ctx, 0.25, &cts);
        let (scale, back) = decode_lwe(&ctx, &bytes, 5).expect("decode");
        assert_eq!(scale, 0.25);
        for (i, ct) in back.iter().enumerate() {
            assert_eq!(ctx.decrypt(&sk, ct), i as u64);
        }
        assert!(decode_lwe(&ctx, &bytes, 4).is_err(), "count above cap");
        let bad = encode_lwe(&ctx, f64::NAN, &cts);
        assert!(decode_lwe(&ctx, &bad, 5).is_err(), "NaN scale");
    }

    #[test]
    fn parsed_views_match_owned_decode_for_both_codecs() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(21);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let values = vec![0.25; 64];
        for codec in [&CanonicalCodec as &dyn WireCodec, &SeededCodec as &dyn WireCodec] {
            let cts: Vec<CkksCiphertext> = (0..2)
                .map(|_| {
                    if codec.symmetric() {
                        ctx.encrypt_symmetric(&sk, &values, &mut rng).expect("encrypt")
                    } else {
                        ctx.encrypt(&pk, &values, &mut rng).expect("encrypt")
                    }
                })
                .collect();
            let bytes = codec.encode_upload(&ctx, &cts).expect("encode");
            let owned = codec.decode_upload(&ctx, &bytes, 2).expect("decode");
            let parsed = codec.parse_upload(&ctx, &bytes, 2).expect("parse");
            assert_eq!(parsed.len(), 2, "{}", codec.name());
            assert!(!parsed.is_empty());
            // A materialized view is the same ciphertext the owned
            // decoder produces, byte for byte after re-serialization.
            for (v, ct) in parsed.views().iter().zip(&owned) {
                let via_view = v.to_ciphertext(&ctx).expect("materialize");
                assert_eq!(ctx.serialize(&via_view), ctx.serialize(ct), "{}", codec.name());
            }
            // Parse enforces the same caps and structure as decode.
            assert!(codec.parse_upload(&ctx, &bytes, 1).is_err(), "count above cap");
            assert!(codec.parse_upload(&ctx, &bytes[..bytes.len() / 2], 2).is_err(), "truncated");
            let mut bad = bytes.clone();
            bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(codec.parse_upload(&ctx, &bad, 2).is_err(), "oversized declared length");
            // Wrong tag for this codec's parser.
            let other = if codec.symmetric() {
                encode_ckks(&ctx, &cts)
            } else {
                vec![TAG_CKKS_SEEDED, 0, 0, 0, 0]
            };
            assert!(codec.parse_upload(&ctx, &other, 2).is_err(), "tag mismatch");
        }
        // Broadcasts are canonical under either codec.
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let broadcast = SeededCodec.encode_broadcast(&ctx, std::slice::from_ref(&ct));
        assert_eq!(broadcast.first(), Some(&TAG_CKKS));
        // A seedless (public-key) ciphertext cannot ride the seeded codec.
        assert!(SeededCodec.encode_upload(&ctx, std::slice::from_ref(&ct)).is_err());
    }

    #[test]
    fn tag_mismatch_rejected() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let plain = encode_plain(&[1.0, 2.0]);
        assert!(decode_ckks(&ctx, &plain, 4).is_err());
        let lwe_ctx = LweContext::new(LweParams::tfhe1()).expect("params");
        assert!(decode_lwe(&lwe_ctx, &plain, 4).is_err());
        assert!(decode_plain(&[], 4).is_err(), "empty payload");
    }
}
