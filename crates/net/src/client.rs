//! The federated client: connects to an [`FlServer`], trains locally,
//! and uploads (optionally encrypted) model updates.
//!
//! Under the CKKS pipeline the client derives the shared key pair from
//! the run seed ([`round::derive_ckks_keys`]) — exactly as every other
//! client does — encrypts uploads with its private randomness stream,
//! and decrypts each received global model. The server sees only
//! ciphertexts.
//!
//! [`FlServer`]: crate::server::FlServer

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rhychee_core::packing;
use rhychee_core::round::{self, ClientLocal};
use rhychee_core::FlConfig;
use rhychee_fhe::ckks::{CkksContext, CkksPublicKey, CkksSecretKey};
use rhychee_fhe::params::CkksParams;
use rhychee_hdc::model::{EncodedDataset, HdcModel};
use rhychee_telemetry as telemetry;

use crate::codec::{self, CanonicalCodec, SeededCodec, WireCodec};
use crate::error::NetError;
use crate::wire::{self, Message, DEFAULT_MAX_PAYLOAD};

/// How the client transports model payloads (must match the server's
/// [`ServerPipeline`](crate::server::ServerPipeline)).
pub enum ClientPipeline {
    /// Plaintext `f32` parameters.
    Plaintext,
    /// Packed CKKS ciphertexts under the shared key derived from the
    /// run seed, in the wire format of [`ClientConfig::codec`]
    /// (canonical by default; [`SeededCodec`] selects symmetric
    /// encryption with seed-compressed uploads).
    Ckks(CkksParams),
    /// Like [`ClientPipeline::Ckks`], but forcing the seed-compressed
    /// wire format regardless of the configured codec.
    #[deprecated(
        since = "0.1.0",
        note = "use `Ckks` with `ClientConfig::codec` set to `SeededCodec` instead"
    )]
    CkksSeeded(CkksParams),
}

/// Client-side connection configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The server to connect to.
    pub addr: SocketAddr,
    /// Socket write / handshake timeout.
    pub io_timeout: Duration,
    /// How long to wait for a `Global` broadcast (spans the server's
    /// whole collection window plus aggregation).
    pub round_timeout: Duration,
    /// Connection attempts before giving up.
    pub connect_attempts: u32,
    /// Upload (re)attempts per round before giving up.
    pub upload_attempts: u32,
    /// Base backoff between attempts (doubles per retry).
    pub backoff: Duration,
    /// Frame payload cap in bytes.
    pub max_payload: u32,
    /// CKKS wire codec for uploads (default [`CanonicalCodec`]; must
    /// match the server's configured codec). A [`SeededCodec`] client
    /// encrypts uploads symmetrically so each ciphertext carries the
    /// expansion seed the format transmits in place of `c1`; downloads
    /// stay canonical, since the aggregate is not a fresh encryption.
    pub codec: Arc<dyn WireCodec>,
    /// Slot layout for CKKS uploads and the global broadcast (default
    /// dense; must match the server's
    /// [`ServerConfigBuilder::packing`](crate::server::ServerConfigBuilder::packing)).
    /// Under a bit-interleaved layout the received global is an
    /// encrypted *sum*; decryption divides by the in-band contributor
    /// counter to recover the mean.
    pub packing: packing::PackingConfig,
}

impl ClientConfig {
    /// Loopback defaults: 5 s I/O, 60 s round window, 4 connect and 3
    /// upload attempts with 50 ms base backoff, canonical wire codec.
    pub fn new(addr: SocketAddr) -> Self {
        ClientConfig {
            addr,
            io_timeout: Duration::from_secs(5),
            round_timeout: Duration::from_secs(60),
            connect_attempts: 4,
            upload_attempts: 3,
            backoff: Duration::from_millis(50),
            max_payload: DEFAULT_MAX_PAYLOAD,
            codec: Arc::new(CanonicalCodec),
            packing: packing::PackingConfig::dense(),
        }
    }
}

/// What one client measured over a full federation run.
#[derive(Debug, Clone, Default)]
pub struct ClientReport {
    /// This client's id.
    pub client_id: usize,
    /// Rounds the client trained and uploaded for.
    pub rounds_participated: usize,
    /// `(round, accuracy)` of each received global model on the eval
    /// set (empty when no eval set was given; round 0's zero model is
    /// skipped).
    pub accuracies: Vec<(usize, f64)>,
    /// The final global model (decrypted locally under CKKS).
    pub final_model: Vec<f32>,
    /// Total bytes written to the socket (measured, not modeled).
    pub bytes_tx: u64,
    /// Total bytes read from the socket.
    pub bytes_rx: u64,
    /// Connect/upload retries performed.
    pub retries: u64,
    /// Uploads the server NACKed (late or duplicate).
    pub rejected_updates: u64,
    /// Total wall time in local training across all rounds (the exact
    /// sum of this client's `local_train` span durations).
    pub train_time: Duration,
    /// Total wall time encrypting/encoding uploads (`encrypt` spans).
    pub encrypt_time: Duration,
    /// Total wall time writing update frames (`upload` spans).
    pub upload_time: Duration,
    /// Total wall time decoding/decrypting globals (`decrypt` spans).
    pub decrypt_time: Duration,
}

/// Key material for the CKKS pipeline (client side only).
struct CkksSide {
    ctx: CkksContext,
    sk: CkksSecretKey,
    pk: CkksPublicKey,
    /// Wire format for uploads; a symmetric codec switches encryption
    /// to the secret key so ciphertexts carry expansion seeds.
    codec: Arc<dyn WireCodec>,
}

/// A blocking-I/O TCP federated client.
pub struct FlClient {
    config: ClientConfig,
    fl: FlConfig,
    local: ClientLocal,
    eval: Option<EncodedDataset>,
    ckks: Option<CkksSide>,
    classes: usize,
}

impl FlClient {
    /// Builds a client around one [`ClientLocal`] shard (from
    /// [`round::prepare`], which every participant runs identically).
    ///
    /// `eval` enables per-round accuracy measurement of received global
    /// models; pass `None` on clients that should not evaluate.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Fhe`] if the CKKS parameters are invalid.
    pub fn new(
        config: ClientConfig,
        fl: FlConfig,
        local: ClientLocal,
        classes: usize,
        eval: Option<EncodedDataset>,
        pipeline: ClientPipeline,
    ) -> Result<Self, NetError> {
        // The deprecated seeded pipeline variant forces its codec so
        // pre-redesign callers keep their wire format unchanged.
        #[allow(deprecated)]
        let (params, wire_codec): (Option<CkksParams>, Arc<dyn WireCodec>) = match pipeline {
            ClientPipeline::Plaintext => (None, Arc::clone(&config.codec)),
            ClientPipeline::Ckks(params) => (Some(params), Arc::clone(&config.codec)),
            ClientPipeline::CkksSeeded(params) => (Some(params), Arc::new(SeededCodec)),
        };
        config.packing.validate()?;
        let ckks = match params {
            None => None,
            Some(params) => {
                let ctx = CkksContext::with_parallelism(params, fl.parallelism)?;
                let (sk, pk) = round::derive_ckks_keys(&ctx, fl.seed);
                Some(CkksSide { ctx, sk, pk, codec: wire_codec })
            }
        };
        Ok(FlClient { config, fl, local, eval, ckks, classes })
    }

    /// Runs the full client session: connect (with retry), handshake,
    /// all training rounds, final model receipt.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the server cannot be reached within
    /// the configured attempts, or on any protocol / I/O / FHE failure.
    pub fn run(mut self) -> Result<ClientReport, NetError> {
        let mut report = ClientReport { client_id: self.local.id(), ..ClientReport::default() };
        if telemetry::enabled() {
            telemetry::trace::set_actor(&format!("client{}", self.local.id()));
        }
        let mut stream = self.connect(&mut report)?;

        let n = wire::write_message(&mut stream, &Message::Hello { client_id: self.local.id() })?;
        self.sent(&mut report, n);
        let (msg, n) = wire::read_message(&mut stream, self.config.max_payload)?;
        self.received(&mut report, n);
        let rounds = match msg {
            Message::Welcome { client_id, rounds, .. } if client_id == self.local.id() => rounds,
            other => {
                return Err(NetError::Protocol(format!("expected Welcome, got {}", other.name())))
            }
        };

        let num_params = self.local.num_parameters();
        let max_cts = match &self.ckks {
            Some(side) => packing::ciphertexts_needed_with(
                &self.config.packing,
                num_params,
                side.ctx.slot_count(),
            ),
            None => 0,
        };

        let mut got_final = false;
        loop {
            let (msg, rctx, n) = match wire::read_message_ctx(&mut stream, self.config.max_payload)
            {
                Ok(v) => v,
                // Once the final model is in, a server that closes
                // without a trailing Finished is still a clean session.
                Err(_) if got_final => break,
                Err(e) => return Err(e),
            };
            self.received(&mut report, n);
            let (round, last, model) = match msg {
                Message::Global { round, last, model } => (round, last, model),
                Message::UpdateAck { accepted, .. } => {
                    if !accepted {
                        report.rejected_updates += 1;
                    }
                    continue;
                }
                Message::Finished { .. } => break,
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected Global, got {}",
                        other.name()
                    )))
                }
            };

            // Spans from here to the end of this round parent under the
            // server's `net_round` span via the wire trace context (the
            // final broadcast and round-0 carry none).
            telemetry::trace::set_remote_context(rctx);
            let dspan = telemetry::span("decrypt");
            let global = self.decode_global(&model, num_params, max_cts);
            let decrypt_time = dspan.finish();
            telemetry::observe_duration("fl.phase.decrypt.ns", decrypt_time);
            report.decrypt_time += decrypt_time;
            let global = global?;
            if let Some(eval) = &self.eval {
                if last || round > 0 {
                    let acc =
                        HdcModel::from_flat(&global, self.classes, self.fl.hd_dim).accuracy(eval);
                    // A Global opening round r carries the aggregate of
                    // round r-1; the final one carries the last round's.
                    let agg_round = if last { rounds - 1 } else { round - 1 };
                    report.accuracies.push((agg_round, acc));
                }
            }
            if last {
                self.local.load_global(&global);
                report.final_model = global;
                got_final = true;
                continue; // drain until Finished (or EOF)
            }

            let span = telemetry::span("client_round");

            let tspan = telemetry::span("local_train");
            let flat = self.local.train(&global, &self.fl);
            let train_time = tspan.finish();
            telemetry::observe_duration("fl.phase.local_train.ns", train_time);
            report.train_time += train_time;

            let espan = telemetry::span("encrypt");
            let payload = match &self.ckks {
                None => Ok(codec::encode_plain(&flat)),
                Some(side) => {
                    let cts = if side.codec.symmetric() {
                        self.local.encrypt_update_symmetric_with(
                            &side.ctx,
                            &side.sk,
                            &flat,
                            &self.config.packing,
                        )
                    } else {
                        self.local.encrypt_update_with(
                            &side.ctx,
                            &side.pk,
                            &flat,
                            &self.config.packing,
                        )
                    };
                    cts.map_err(NetError::from)
                        .and_then(|cts| side.codec.encode_upload(&side.ctx, &cts))
                }
            };
            let encrypt_time = espan.finish();
            telemetry::observe_duration("fl.phase.encrypt.ns", encrypt_time);
            report.encrypt_time += encrypt_time;
            if telemetry::enabled() {
                telemetry::observe_labeled(
                    "net.client.encrypt_ns",
                    "client_id",
                    &self.local.id().to_string(),
                    encrypt_time.as_nanos() as u64,
                );
            }
            let update = Message::Update {
                round,
                client_id: self.local.id(),
                steps: self.local.last_steps(),
                model: payload?,
            };
            // The upload frame chains the server's decode under this
            // client's `client_round` span in the merged trace.
            let uctx = rctx.map(|c| wire::TraceContext {
                trace_id: c.trace_id,
                parent_span: span.id(),
                round: c.round,
            });
            let uspan = telemetry::span("upload");
            let n = self.upload(&mut stream, &update, uctx.as_ref(), &mut report)?;
            let upload_time = uspan.finish();
            telemetry::observe_duration("fl.phase.upload.ns", upload_time);
            report.upload_time += upload_time;
            self.sent(&mut report, n);
            report.rounds_participated += 1;
            span.finish();
        }
        Ok(report)
    }

    /// Connects with bounded exponential backoff.
    fn connect(&self, report: &mut ClientReport) -> Result<TcpStream, NetError> {
        let mut delay = self.config.backoff;
        let mut last_err: Option<NetError> = None;
        for attempt in 0..self.config.connect_attempts.max(1) {
            if attempt > 0 {
                thread::sleep(delay);
                delay *= 2;
                report.retries += 1;
                self.count_retry();
            }
            match TcpStream::connect_timeout(&self.config.addr, self.config.io_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_write_timeout(Some(self.config.io_timeout))?;
                    stream.set_read_timeout(Some(self.config.round_timeout))?;
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e.into()),
            }
        }
        Err(last_err.unwrap_or_else(|| NetError::Protocol("no connection attempts".into())))
    }

    /// Uploads one update frame with bounded retry. A retry is only
    /// safe when the previous attempt failed to write (a torn frame is
    /// caught by the server's CRC check and drops this client).
    fn upload(
        &self,
        stream: &mut TcpStream,
        update: &Message,
        ctx: Option<&wire::TraceContext>,
        report: &mut ClientReport,
    ) -> Result<usize, NetError> {
        let mut delay = self.config.backoff;
        let mut last_err: Option<NetError> = None;
        for attempt in 0..self.config.upload_attempts.max(1) {
            if attempt > 0 {
                thread::sleep(delay);
                delay *= 2;
                report.retries += 1;
                self.count_retry();
            }
            match wire::write_message_ctx(stream, update, ctx) {
                Ok(n) => return Ok(n),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| NetError::Protocol("no upload attempts".into())))
    }

    /// Counts one connect/upload retry into the run-total counter, the
    /// frame-level counter, and this client's labeled series.
    fn count_retry(&self) {
        telemetry::count("net.retries", 1);
        telemetry::count("net.frame.retry", 1);
        if telemetry::enabled() {
            telemetry::count_labeled(
                "net.client.retries",
                "client_id",
                &self.local.id().to_string(),
                1,
            );
        }
    }

    fn decode_global(
        &self,
        model: &[u8],
        num_params: usize,
        max_cts: usize,
    ) -> Result<Vec<f32>, NetError> {
        match &self.ckks {
            None => codec::decode_plain(model, num_params),
            Some(side) => {
                // Round 0 distributes the public all-zero initial model
                // in plaintext (there is nothing secret to protect yet);
                // every later broadcast is the aggregated ciphertext.
                if model.first() == Some(&codec::TAG_PLAIN) {
                    return codec::decode_plain(model, num_params);
                }
                let cts = codec::decode_ckks(&side.ctx, model, max_cts)?;
                Ok(packing::decrypt_model_with(
                    &side.ctx,
                    &side.sk,
                    &cts,
                    num_params,
                    &self.config.packing,
                )?)
            }
        }
    }

    fn sent(&self, report: &mut ClientReport, n: usize) {
        report.bytes_tx += n as u64;
        telemetry::count("net.bytes_tx", n as u64);
    }

    fn received(&self, report: &mut ClientReport, n: usize) {
        report.bytes_rx += n as u64;
        telemetry::count("net.bytes_rx", n as u64);
    }
}
