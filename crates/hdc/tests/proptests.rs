//! Property-based tests for HDC invariants.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use rhychee_hdc::encoding::{Encoder, RandomProjectionEncoder, RbfEncoder};
use rhychee_hdc::model::HdcModel;
use rhychee_hdc::quantize::QuantizedModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rbf_outputs_bounded(
        seed in any::<u64>(),
        features in prop::collection::vec(-10.0f32..10.0, 4..16),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = RbfEncoder::new(features.len(), 64, &mut rng);
        let hv = enc.encode(&features);
        prop_assert_eq!(hv.len(), 64);
        prop_assert!(hv.iter().all(|&h| (-1.0..=1.0).contains(&h)));
    }

    #[test]
    fn projection_outputs_bipolar(
        seed in any::<u64>(),
        features in prop::collection::vec(-10.0f32..10.0, 4..16),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = RandomProjectionEncoder::new(features.len(), 64, &mut rng);
        let hv = enc.encode(&features);
        prop_assert!(hv.iter().all(|&h| h == 1.0 || h == -1.0));
    }

    #[test]
    fn encoding_scale_invariance_of_projection(
        seed in any::<u64>(),
        features in prop::collection::vec(0.01f32..10.0, 8),
        scale in 0.1f32..100.0,
    ) {
        // sign(B·(c·F)) = sign(B·F) for c > 0.
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = RandomProjectionEncoder::new(8, 128, &mut rng);
        let scaled: Vec<f32> = features.iter().map(|&x| x * scale).collect();
        prop_assert_eq!(enc.encode(&features), enc.encode(&scaled));
    }

    #[test]
    fn model_flatten_round_trip(
        flat in prop::collection::vec(-100.0f32..100.0, 24),
    ) {
        let model = HdcModel::from_flat(&flat, 3, 8);
        prop_assert_eq!(model.flatten(), flat);
    }

    #[test]
    fn classification_is_scale_invariant(
        flat in prop::collection::vec(-10.0f32..10.0, 32),
        hv in prop::collection::vec(-1.0f32..1.0, 16),
        scale in 0.001f32..1000.0,
    ) {
        // Cosine similarity ignores the model's global scale.
        let m1 = HdcModel::from_flat(&flat, 2, 16);
        let scaled: Vec<f32> = flat.iter().map(|&x| x * scale).collect();
        let m2 = HdcModel::from_flat(&scaled, 2, 16);
        prop_assert_eq!(m1.classify(&hv), m2.classify(&hv));
    }

    #[test]
    fn training_on_one_sample_fixes_it(
        seed in any::<u64>(),
        label in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hv: Vec<f32> = (0..32).map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0)).collect();
        let mut model = HdcModel::new(3, 32);
        // Repeated adaptive updates converge on a single sample.
        for _ in 0..10 {
            if model.train_sample(&hv, label, 1.0) {
                break;
            }
        }
        prop_assert_eq!(model.classify(&hv), label);
    }

    #[test]
    fn quantization_error_within_half_step(
        flat in prop::collection::vec(-50.0f32..50.0, 16),
        bits in 3u32..16,
    ) {
        let model = HdcModel::from_flat(&flat, 2, 8);
        let q = QuantizedModel::quantize(&model, bits);
        let back = q.dequantize();
        let bound = q.max_quantization_error() * 1.001;
        for (a, b) in model.flatten().iter().zip(back.flatten().iter()) {
            prop_assert!(((a - b).abs() as f64) <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn offset_encoding_is_lossless(
        flat in prop::collection::vec(-50.0f32..50.0, 16),
        bits in 3u32..12,
    ) {
        let model = HdcModel::from_flat(&flat, 2, 8);
        let q = QuantizedModel::quantize(&model, bits);
        let restored = QuantizedModel::from_offset_encoded(
            &q.to_offset_encoded(),
            q.scale(),
            bits,
            2,
            8,
        );
        prop_assert_eq!(restored, q);
    }

    #[test]
    fn normalize_is_idempotent(flat in prop::collection::vec(-10.0f32..10.0, 32)) {
        let mut m = HdcModel::from_flat(&flat, 2, 16);
        m.normalize();
        let once = m.flatten();
        m.normalize();
        let twice = m.flatten();
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
