//! Hyperdimensional computing (HDC) for Rhychee-FL.
//!
//! HDC classifiers represent each class as a high-dimensional vector
//! ("class hypervector"); training is elementwise vector addition and
//! inference is a nearest-neighbour search under cosine similarity. The
//! whole model is `L × D` numbers — the property Rhychee-FL exploits for
//! cheap encrypted federated aggregation.
//!
//! * [`encoding`] — random-projection and RBF feature encoders (§II-B)
//! * [`model`] — class-hypervector model, adaptive training rule (Eq. 1),
//!   inference
//! * [`quantize`] — fixed-point quantization for the TFHE pipeline
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_hdc::encoding::{Encoder, RbfEncoder};
//! use rhychee_hdc::model::HdcModel;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let encoder = RbfEncoder::new(4, 256, &mut rng);
//! // Two linearly separable blobs.
//! let samples: Vec<(Vec<f32>, usize)> = (0..40)
//!     .map(|i| {
//!         let c = i % 2;
//!         let base = if c == 0 { 1.0 } else { -1.0 };
//!         (vec![base, base, base, base], c)
//!     })
//!     .collect();
//! let mut model = HdcModel::new(2, encoder.dim());
//! for (x, y) in &samples {
//!     let hv = encoder.encode(x);
//!     model.train_sample(&hv, *y, 1.0);
//! }
//! let hv = encoder.encode(&[1.0, 1.0, 1.0, 1.0]);
//! assert_eq!(model.classify(&hv), 0);
//! ```

pub mod encoding;
pub mod model;
pub mod quantize;

pub use encoding::{Encoder, RandomProjectionEncoder, RbfEncoder};
pub use model::{EncodedDataset, HdcModel};
