//! Feature-to-hypervector encoders (paper §II-B).
//!
//! Two encoders are provided, matching the paper's experimental setup:
//! random projection (used for HAR) and RBF (used for MNIST). Both are
//! deterministic given their base matrices, so every federated client can
//! reconstruct the same encoder from a shared seed.

use rand::Rng;
use rhychee_par::Parallelism;
use std::f32::consts::TAU;

/// A feature encoder mapping raw `f`-dimensional inputs to `D`-dimensional
/// hypervectors.
///
/// Implementations are [`Send`] + [`Sync`] so federated clients can encode
/// in parallel.
pub trait Encoder: Send + Sync {
    /// Hypervector dimension D.
    fn dim(&self) -> usize;

    /// Expected input feature count f.
    fn input_dim(&self) -> usize;

    /// Encodes one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != input_dim()`.
    fn encode(&self, features: &[f32]) -> Vec<f32>;

    /// Encodes a batch of feature vectors, split `par.degree()` ways on
    /// the shared `rhychee-par` pool. Output order (and every bit of
    /// every hypervector) is independent of the degree.
    fn encode_batch(&self, features: &[Vec<f32>], par: Parallelism) -> Vec<Vec<f32>>
    where
        Self: Sized,
    {
        if par.is_sequential() || features.len() < 64 {
            return features.iter().map(|f| self.encode(f)).collect();
        }
        rhychee_par::map(par, features.len(), |i| self.encode(&features[i]))
    }
}

/// Random-projection encoding: `h_i = sign(B_i · F)` with `B_i ∈ {−1, 1}^f`.
///
/// Produces bipolar hypervectors in `{−1, 1}^D`. Used for the HAR dataset
/// in the paper.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rhychee_hdc::encoding::{Encoder, RandomProjectionEncoder};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let enc = RandomProjectionEncoder::new(8, 128, &mut rng);
/// let hv = enc.encode(&[0.2; 8]);
/// assert_eq!(hv.len(), 128);
/// assert!(hv.iter().all(|&h| h == 1.0 || h == -1.0));
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjectionEncoder {
    input_dim: usize,
    dim: usize,
    /// Row-major D×f sign matrix (±1.0 stored as f32 so the projection
    /// inner loop autovectorizes).
    bases: Vec<f32>,
}

impl RandomProjectionEncoder {
    /// Samples a random base matrix for `input_dim` features and dimension
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, dim: usize, rng: &mut R) -> Self {
        assert!(input_dim > 0 && dim > 0, "dimensions must be positive");
        let bases = (0..input_dim * dim)
            .map(|_| if rng.gen::<bool>() { 1.0f32 } else { -1.0f32 })
            .collect();
        RandomProjectionEncoder { input_dim, dim, bases }
    }
}

impl Encoder for RandomProjectionEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn encode(&self, features: &[f32]) -> Vec<f32> {
        assert_eq!(features.len(), self.input_dim, "feature length mismatch");
        (0..self.dim)
            .map(|i| {
                let row = &self.bases[i * self.input_dim..(i + 1) * self.input_dim];
                let dot: f32 = row.iter().zip(features).map(|(&b, &x)| b * x).sum();
                if dot >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }
}

/// RBF encoding: `h_i = cos(B_i · F + b_i)` with Gaussian `B_i` and
/// uniform phase `b_i ∈ [0, 2π)`.
///
/// Produces dense hypervectors in `[−1, 1]^D`; the kernel-approximation
/// view is due to ManiHD. Used for the MNIST dataset in the paper.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rhychee_hdc::encoding::{Encoder, RbfEncoder};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let enc = RbfEncoder::new(8, 128, &mut rng);
/// let hv = enc.encode(&[0.2; 8]);
/// assert!(hv.iter().all(|&h| (-1.0..=1.0).contains(&h)));
/// ```
#[derive(Debug, Clone)]
pub struct RbfEncoder {
    input_dim: usize,
    dim: usize,
    /// Row-major D×f Gaussian projection matrix.
    bases: Vec<f32>,
    /// Per-dimension phase offsets in [0, 2π).
    biases: Vec<f32>,
    /// Bandwidth applied to the projection (1/√f keeps phases O(1)).
    gamma: f32,
}

impl RbfEncoder {
    /// Samples a random Gaussian base matrix with default bandwidth
    /// `γ = 2/√f` (empirically the best operating point for pixel- and
    /// feature-scale inputs in this repo's datasets).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, dim: usize, rng: &mut R) -> Self {
        Self::with_gamma(input_dim, dim, 2.0 / (input_dim as f32).sqrt(), rng)
    }

    /// Samples with an explicit kernel bandwidth γ.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or γ is not positive.
    pub fn with_gamma<R: Rng + ?Sized>(
        input_dim: usize,
        dim: usize,
        gamma: f32,
        rng: &mut R,
    ) -> Self {
        assert!(input_dim > 0 && dim > 0, "dimensions must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        let bases = (0..input_dim * dim).map(|_| gaussian_f32(rng)).collect();
        let biases = (0..dim).map(|_| rng.gen::<f32>() * TAU).collect();
        RbfEncoder { input_dim, dim, bases, biases, gamma }
    }
}

impl Encoder for RbfEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn encode(&self, features: &[f32]) -> Vec<f32> {
        assert_eq!(features.len(), self.input_dim, "feature length mismatch");
        (0..self.dim)
            .map(|i| {
                let row = &self.bases[i * self.input_dim..(i + 1) * self.input_dim];
                let dot: f32 = row.iter().zip(features).map(|(&b, &x)| b * x).sum();
                (self.gamma * dot + self.biases[i]).cos()
            })
            .collect()
    }
}

/// Standard normal sample via Box–Muller (f32 output).
fn gaussian_f32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn random_projection_is_bipolar() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = RandomProjectionEncoder::new(10, 500, &mut rng);
        let hv = enc.encode(&[0.5; 10]);
        assert_eq!(hv.len(), 500);
        assert!(hv.iter().all(|&h| h == 1.0 || h == -1.0));
    }

    #[test]
    fn rbf_values_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = RbfEncoder::new(10, 500, &mut rng);
        let hv = enc.encode(&[2.0; 10]);
        assert!(hv.iter().all(|&h| (-1.0..=1.0).contains(&h)));
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = RbfEncoder::new(6, 200, &mut rng);
        let x = [0.1, -0.4, 2.0, 0.0, 1.0, -1.0];
        assert_eq!(enc.encode(&x), enc.encode(&x));
    }

    #[test]
    fn same_seed_gives_same_encoder() {
        let enc1 = RandomProjectionEncoder::new(5, 100, &mut StdRng::seed_from_u64(9));
        let enc2 = RandomProjectionEncoder::new(5, 100, &mut StdRng::seed_from_u64(9));
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(enc1.encode(&x), enc2.encode(&x));
    }

    #[test]
    fn similar_inputs_give_similar_hypervectors() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = RbfEncoder::new(20, 2000, &mut rng);
        let x: Vec<f32> = (0..20).map(|i| i as f32 / 10.0).collect();
        let mut y = x.clone();
        y[0] += 0.01;
        let z: Vec<f32> = x.iter().map(|v| -v).collect();
        let hx = enc.encode(&x);
        let hy = enc.encode(&y);
        let hz = enc.encode(&z);
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(u, v)| u * v).sum();
            let na: f32 = a.iter().map(|u| u * u).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|u| u * u).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        assert!(cos(&hx, &hy) > 0.99, "perturbed input should stay close");
        assert!(cos(&hx, &hz) < cos(&hx, &hy), "distant input should be farther");
    }

    #[test]
    fn batch_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let enc = RandomProjectionEncoder::new(8, 64, &mut rng);
        let data: Vec<Vec<f32>> =
            (0..100).map(|i| (0..8).map(|j| ((i * 8 + j) as f32).sin()).collect()).collect();
        let seq: Vec<Vec<f32>> = data.iter().map(|f| enc.encode(f)).collect();
        for par in [Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(seq, enc.encode_batch(&data, par), "{par}");
        }
    }

    #[test]
    #[should_panic(expected = "feature length")]
    fn wrong_input_length_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = RbfEncoder::new(4, 16, &mut rng);
        let _ = enc.encode(&[1.0; 5]);
    }

    #[test]
    fn rbf_gamma_controls_sensitivity() {
        let mut rng = StdRng::seed_from_u64(7);
        // Identical base seeds, different gamma.
        let narrow = RbfEncoder::with_gamma(4, 4000, 0.01, &mut StdRng::seed_from_u64(8));
        let wide = RbfEncoder::with_gamma(4, 4000, 5.0, &mut StdRng::seed_from_u64(8));
        let _ = &mut rng;
        let x = [0.0, 0.0, 0.0, 0.0];
        let y = [0.5, 0.5, 0.5, 0.5];
        let dist = |enc: &RbfEncoder| {
            let hx = enc.encode(&x);
            let hy = enc.encode(&y);
            hx.iter().zip(&hy).map(|(a, b)| (a - b).powi(2)).sum::<f32>()
        };
        assert!(dist(&wide) > dist(&narrow), "larger gamma separates inputs more");
    }
}
