//! The HDC class-hypervector model: training (paper Eq. 1), inference,
//! and the flatten/unflatten plumbing federated aggregation needs.

/// A dataset already mapped to hypervector space.
///
/// Encoding is the expensive step of HDC, so federated clients encode
/// once and train over the cached hypervectors for all epochs/rounds.
#[derive(Debug, Clone, Default)]
pub struct EncodedDataset {
    hypervectors: Vec<Vec<f32>>,
    labels: Vec<usize>,
}

impl EncodedDataset {
    /// Builds a dataset from pre-encoded hypervectors and labels.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or hypervector dimensions are inconsistent.
    pub fn new(hypervectors: Vec<Vec<f32>>, labels: Vec<usize>) -> Self {
        assert_eq!(hypervectors.len(), labels.len(), "sample/label count mismatch");
        if let Some(first) = hypervectors.first() {
            assert!(
                hypervectors.iter().all(|h| h.len() == first.len()),
                "inconsistent hypervector dimensions"
            );
        }
        EncodedDataset { hypervectors, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Hypervector dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.hypervectors.first().map_or(0, Vec::len)
    }

    /// Iterates `(hypervector, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], usize)> {
        self.hypervectors.iter().map(Vec::as_slice).zip(self.labels.iter().copied())
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

/// An HDC classifier: one `D`-dimensional hypervector per class.
///
/// Implements the paper's adaptive training rule (Eq. 1):
///
/// ```text
/// C_c ← C_c + lr · (1 − σ(C_c, H)) · H
/// C_p ← C_p − lr · (1 − σ(C_p, H)) · H
/// ```
///
/// applied when the model mispredicts class `p` for a sample of class `c`,
/// with σ = cosine similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcModel {
    class_vectors: Vec<Vec<f32>>,
    dim: usize,
}

impl HdcModel {
    /// Creates a zero-initialized model for `classes` classes of dimension
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(classes: usize, dim: usize) -> Self {
        assert!(classes > 0 && dim > 0, "model shape must be positive");
        HdcModel { class_vectors: vec![vec![0.0; dim]; classes], dim }
    }

    /// Reconstructs a model from a flat row-major parameter vector (the
    /// inverse of [`HdcModel::flatten`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != classes * dim`.
    pub fn from_flat(flat: &[f32], classes: usize, dim: usize) -> Self {
        assert_eq!(flat.len(), classes * dim, "flat parameter length mismatch");
        let class_vectors = flat.chunks(dim).map(<[f32]>::to_vec).collect();
        HdcModel { class_vectors, dim }
    }

    /// Number of classes L.
    pub fn classes(&self) -> usize {
        self.class_vectors.len()
    }

    /// Hypervector dimension D.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total trainable parameters `D × L` (the paper's model-size metric).
    pub fn num_parameters(&self) -> usize {
        self.dim * self.class_vectors.len()
    }

    /// The class hypervectors.
    pub fn class_vectors(&self) -> &[Vec<f32>] {
        &self.class_vectors
    }

    /// Cosine similarity between class `l`'s hypervector and `hv`
    /// (0 for a zero class vector).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range or `hv` has the wrong dimension.
    pub fn similarity(&self, l: usize, hv: &[f32]) -> f32 {
        cosine(&self.class_vectors[l], hv)
    }

    /// Predicts the class with maximal cosine similarity.
    ///
    /// # Panics
    ///
    /// Panics if `hv.len() != dim`.
    pub fn classify(&self, hv: &[f32]) -> usize {
        assert_eq!(hv.len(), self.dim, "hypervector dimension mismatch");
        self.class_vectors
            .iter()
            .enumerate()
            .map(|(l, c)| (l, cosine(c, hv)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l)
            .expect("at least one class")
    }

    /// Applies one adaptive update for a labelled sample (Eq. 1). Returns
    /// `true` if the sample was already classified correctly (no update).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or `hv` has the wrong dimension.
    pub fn train_sample(&mut self, hv: &[f32], label: usize, lr: f32) -> bool {
        assert!(label < self.classes(), "label {label} out of range");
        let predicted = self.classify(hv);
        if predicted == label {
            return true;
        }
        let sim_true = cosine(&self.class_vectors[label], hv);
        let sim_pred = cosine(&self.class_vectors[predicted], hv);
        let w_true = lr * (1.0 - sim_true);
        let w_pred = lr * (1.0 - sim_pred);
        for (c, &h) in self.class_vectors[label].iter_mut().zip(hv) {
            *c += w_true * h;
        }
        for (c, &h) in self.class_vectors[predicted].iter_mut().zip(hv) {
            *c -= w_pred * h;
        }
        false
    }

    /// One-shot bundling: adds every hypervector to its class vector
    /// (`C_c ← C_c + H`), the standard OnlineHD/FedHD initialization pass
    /// that the adaptive rule (Eq. 1) then refines.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range labels.
    pub fn bundle(&mut self, data: &EncodedDataset) {
        for (hv, label) in data.iter() {
            assert!(label < self.classes(), "label {label} out of range");
            assert_eq!(hv.len(), self.dim, "hypervector dimension mismatch");
            for (c, &h) in self.class_vectors[label].iter_mut().zip(hv) {
                *c += h;
            }
        }
    }

    /// Trains one epoch over the dataset; returns the number of updates
    /// (misclassified samples).
    pub fn train_epoch(&mut self, data: &EncodedDataset, lr: f32) -> usize {
        let mut errors = 0;
        for (hv, label) in data.iter() {
            if !self.train_sample(hv, label, lr) {
                errors += 1;
            }
        }
        errors
    }

    /// Classification accuracy over a dataset (1.0 for an empty dataset).
    pub fn accuracy(&self, data: &EncodedDataset) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let correct = data.iter().filter(|(hv, label)| self.classify(hv) == *label).count();
        correct as f64 / data.len() as f64
    }

    /// Flattens to a row-major `L·D` parameter vector (the unit that gets
    /// encrypted and aggregated in Rhychee-FL).
    pub fn flatten(&self) -> Vec<f32> {
        self.class_vectors.iter().flatten().copied().collect()
    }

    /// Replaces the parameters from a flat vector (global-model download).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != num_parameters()`.
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_parameters(), "flat parameter length mismatch");
        for (row, chunk) in self.class_vectors.iter_mut().zip(flat.chunks(self.dim)) {
            row.copy_from_slice(chunk);
        }
    }

    /// L2-normalizes every class hypervector in place.
    ///
    /// Normalized models keep aggregation well-conditioned and bound the
    /// dynamic range before fixed-point quantization / CKKS encoding.
    pub fn normalize(&mut self) {
        for row in &mut self.class_vectors {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row.iter_mut() {
                    *x /= norm;
                }
            }
        }
    }

    /// Largest absolute parameter value (dynamic range for quantization).
    pub fn max_abs(&self) -> f32 {
        self.class_vectors.iter().flatten().map(|x| x.abs()).fold(0.0, f32::max)
    }
}

/// Cosine similarity (0.0 when either vector is zero).
fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Builds a toy dataset of two noisy orthogonal-ish clusters.
    fn toy_dataset(n_per_class: usize, dim: usize, seed: u64) -> EncodedDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<Vec<f32>> = (0..3)
            .map(|_| (0..dim).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect())
            .collect();
        let mut hvs = Vec::new();
        let mut labels = Vec::new();
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..n_per_class {
                let hv =
                    proto.iter().map(|&p| if rng.gen::<f32>() < 0.1 { -p } else { p }).collect();
                hvs.push(hv);
                labels.push(c);
            }
        }
        EncodedDataset::new(hvs, labels)
    }

    #[test]
    fn zero_model_has_zero_similarity() {
        let model = HdcModel::new(3, 64);
        assert_eq!(model.similarity(0, &vec![1.0; 64]), 0.0);
        assert_eq!(model.num_parameters(), 192);
    }

    #[test]
    fn bundling_learns_in_one_shot() {
        let data = toy_dataset(50, 256, 9);
        let mut model = HdcModel::new(3, 256);
        model.bundle(&data);
        assert!(model.accuracy(&data) > 0.9, "bundled accuracy {}", model.accuracy(&data));
        // Adaptive refinement on top only helps.
        let before = model.accuracy(&data);
        for _ in 0..3 {
            model.train_epoch(&data, 5.0);
        }
        assert!(model.accuracy(&data) >= before - 1e-9);
    }

    #[test]
    fn bundle_accumulates_class_sums() {
        let data = EncodedDataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![10.0, 20.0]],
            vec![0, 0, 1],
        );
        let mut model = HdcModel::new(2, 2);
        model.bundle(&data);
        assert_eq!(model.class_vectors()[0], vec![4.0, 6.0]);
        assert_eq!(model.class_vectors()[1], vec![10.0, 20.0]);
    }

    #[test]
    fn training_learns_separable_clusters() {
        let data = toy_dataset(50, 256, 1);
        let mut model = HdcModel::new(3, 256);
        for _ in 0..5 {
            model.train_epoch(&data, 1.0);
        }
        assert!(model.accuracy(&data) > 0.95, "accuracy {}", model.accuracy(&data));
    }

    #[test]
    fn errors_decrease_over_epochs() {
        let data = toy_dataset(100, 512, 2);
        let mut model = HdcModel::new(3, 512);
        let e1 = model.train_epoch(&data, 1.0);
        let mut last = e1;
        for _ in 0..4 {
            last = model.train_epoch(&data, 1.0);
        }
        assert!(last < e1, "errors should drop: {e1} -> {last}");
    }

    #[test]
    fn correct_prediction_skips_update() {
        let mut model = HdcModel::new(2, 8);
        let hv = vec![1.0; 8];
        model.train_sample(&hv, 0, 1.0);
        let snapshot = model.clone();
        // Now the sample is classified correctly; training again is a no-op.
        assert!(model.train_sample(&hv, 0, 1.0));
        assert_eq!(model, snapshot);
    }

    #[test]
    fn eq1_update_directions() {
        let mut model = HdcModel::new(2, 4);
        // Force a misprediction: class 1 is partially aligned with hv,
        // class 0 (the true class) is misaligned.
        model.class_vectors[1] = vec![1.0, 1.0, 1.0, -1.0];
        model.class_vectors[0] = vec![-1.0, -1.0, -1.0, -1.0];
        let hv = vec![1.0, 1.0, 1.0, 1.0];
        let sim0_before = model.similarity(0, &hv);
        let sim1_before = model.similarity(1, &hv);
        assert!(!model.train_sample(&hv, 0, 0.5));
        assert!(model.similarity(0, &hv) > sim0_before, "true class moves toward hv");
        assert!(model.similarity(1, &hv) < sim1_before, "wrong class moves away from hv");
    }

    #[test]
    fn eq1_update_weight_vanishes_at_perfect_alignment() {
        // The (1 − σ) factor makes the update a no-op for a class vector
        // already perfectly aligned with the sample.
        let mut model = HdcModel::new(2, 4);
        model.class_vectors[1] = vec![1.0, 1.0, 1.0, 1.0];
        model.class_vectors[0] = vec![-1.0, -1.0, -1.0, -1.0];
        let hv = vec![1.0, 1.0, 1.0, 1.0];
        assert!(!model.train_sample(&hv, 0, 0.5));
        assert_eq!(model.class_vectors[1], vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let data = toy_dataset(20, 64, 3);
        let mut model = HdcModel::new(3, 64);
        model.train_epoch(&data, 1.0);
        let flat = model.flatten();
        assert_eq!(flat.len(), 192);
        let restored = HdcModel::from_flat(&flat, 3, 64);
        assert_eq!(restored, model);
        let mut blank = HdcModel::new(3, 64);
        blank.load_flat(&flat);
        assert_eq!(blank, model);
    }

    #[test]
    fn normalize_gives_unit_rows() {
        let data = toy_dataset(20, 64, 4);
        let mut model = HdcModel::new(3, 64);
        model.train_epoch(&data, 1.0);
        model.normalize();
        for row in model.class_vectors() {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                assert!((norm - 1.0).abs() < 1e-5);
            }
        }
        assert!(model.max_abs() <= 1.0 + 1e-5);
    }

    #[test]
    fn normalization_preserves_predictions() {
        let data = toy_dataset(30, 128, 5);
        let mut model = HdcModel::new(3, 128);
        for _ in 0..3 {
            model.train_epoch(&data, 1.0);
        }
        let before: Vec<usize> = data.iter().map(|(hv, _)| model.classify(hv)).collect();
        model.normalize();
        let after: Vec<usize> = data.iter().map(|(hv, _)| model.classify(hv)).collect();
        assert_eq!(before, after, "cosine classification is scale-invariant");
    }

    #[test]
    fn averaging_two_models_preserves_shared_structure() {
        // The FedAvg sanity property: averaging models trained on the same
        // distribution classifies at least as well as chance and keeps shape.
        let d1 = toy_dataset(50, 256, 6);
        let d2 = toy_dataset(50, 256, 7);
        let mut m1 = HdcModel::new(3, 256);
        let mut m2 = HdcModel::new(3, 256);
        for _ in 0..3 {
            m1.train_epoch(&d1, 1.0);
            m2.train_epoch(&d2, 1.0);
        }
        let avg: Vec<f32> =
            m1.flatten().iter().zip(m2.flatten().iter()).map(|(a, b)| (a + b) / 2.0).collect();
        let global = HdcModel::from_flat(&avg, 3, 256);
        assert!(global.accuracy(&d1) > 0.9, "global on d1: {}", global.accuracy(&d1));
        assert!(global.accuracy(&d2) > 0.9, "global on d2: {}", global.accuracy(&d2));
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let mut model = HdcModel::new(2, 4);
        model.train_sample(&[1.0; 4], 5, 1.0);
    }

    #[test]
    fn empty_dataset_edge_cases() {
        let data = EncodedDataset::default();
        assert!(data.is_empty());
        assert_eq!(data.dim(), 0);
        let model = HdcModel::new(2, 4);
        assert_eq!(model.accuracy(&data), 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn inconsistent_dataset_rejected() {
        let _ = EncodedDataset::new(vec![vec![1.0; 4]], vec![0, 1]);
    }
}
