//! Fixed-point quantization of HDC models.
//!
//! The TFHE pipeline encrypts one small integer per ciphertext, so model
//! parameters must be quantized to `b`-bit signed fixed point. CKKS
//! ingests reals directly, but quantization is also exercised by the
//! design-space experiments on precision (paper §IV-B2).

use crate::model::HdcModel;

/// A quantized model: signed integers plus the scale to undo them.
///
/// Values satisfy `|q| < 2^(bits-1)`, i.e. they fit the two's-complement
/// range of the requested width.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedModel {
    values: Vec<i64>,
    scale: f64,
    bits: u32,
    classes: usize,
    dim: usize,
}

impl QuantizedModel {
    /// Quantizes a model to `bits`-bit signed fixed point, choosing the
    /// scale from the model's dynamic range.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `[2, 32]`.
    pub fn quantize(model: &HdcModel, bits: u32) -> Self {
        assert!((2..=32).contains(&bits), "quantization width {bits} outside [2, 32]");
        let max_abs = f64::from(model.max_abs());
        let max_q = f64::from((1u32 << (bits - 1)) - 1);
        let scale = if max_abs > 0.0 { max_q / max_abs } else { 1.0 };
        let values =
            model.flatten().iter().map(|&v| (f64::from(v) * scale).round() as i64).collect();
        QuantizedModel { values, scale, bits, classes: model.classes(), dim: model.dim() }
    }

    /// Reconstructs the (lossy) floating-point model.
    pub fn dequantize(&self) -> HdcModel {
        let flat: Vec<f32> = self.values.iter().map(|&q| (q as f64 / self.scale) as f32).collect();
        HdcModel::from_flat(&flat, self.classes, self.dim)
    }

    /// The quantized integer values (row-major `L·D`).
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The quantization scale (float = int / scale).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Bit width used for quantization.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Re-centers values into `[0, 2^bits)` for unsigned-only transports
    /// (e.g. the LWE plaintext space), returning offset-encoded values.
    ///
    /// Adding `2^(bits-1)` maps the signed range onto the unsigned range;
    /// [`QuantizedModel::from_offset_encoded`] undoes it.
    pub fn to_offset_encoded(&self) -> Vec<u64> {
        let offset = 1i64 << (self.bits - 1);
        self.values.iter().map(|&q| (q + offset) as u64).collect()
    }

    /// Rebuilds a quantized model from offset-encoded unsigned values.
    ///
    /// # Panics
    ///
    /// Panics if `encoded.len() != classes * dim`.
    pub fn from_offset_encoded(
        encoded: &[u64],
        scale: f64,
        bits: u32,
        classes: usize,
        dim: usize,
    ) -> Self {
        assert_eq!(encoded.len(), classes * dim, "encoded length mismatch");
        let offset = 1i64 << (bits - 1);
        let values = encoded.iter().map(|&u| u as i64 - offset).collect();
        QuantizedModel { values, scale, bits, classes, dim }
    }

    /// Worst-case quantization error in float units (half a step).
    pub fn max_quantization_error(&self) -> f64 {
        0.5 / self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn trained_model(seed: u64) -> HdcModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = HdcModel::new(4, 128);
        let flat: Vec<f32> = (0..512).map(|_| rng.gen_range(-2.0..2.0)).collect();
        model.load_flat(&flat);
        model
    }

    #[test]
    fn quantize_dequantize_error_bounded() {
        let model = trained_model(1);
        for bits in [4u32, 8, 16] {
            let q = QuantizedModel::quantize(&model, bits);
            let back = q.dequantize();
            let max_err = model
                .flatten()
                .iter()
                .zip(back.flatten().iter())
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0f64, f64::max);
            assert!(
                max_err <= q.max_quantization_error() * 1.001,
                "{bits}-bit error {max_err} > bound {}",
                q.max_quantization_error()
            );
        }
    }

    #[test]
    fn values_fit_bit_width() {
        let model = trained_model(2);
        for bits in [3u32, 8, 12] {
            let q = QuantizedModel::quantize(&model, bits);
            let limit = 1i64 << (bits - 1);
            assert!(q.values().iter().all(|&v| v.abs() < limit));
        }
    }

    #[test]
    fn more_bits_less_error() {
        let model = trained_model(3);
        let coarse = QuantizedModel::quantize(&model, 4);
        let fine = QuantizedModel::quantize(&model, 12);
        assert!(fine.max_quantization_error() < coarse.max_quantization_error());
    }

    #[test]
    fn offset_encoding_round_trip() {
        let model = trained_model(4);
        let q = QuantizedModel::quantize(&model, 8);
        let encoded = q.to_offset_encoded();
        assert!(encoded.iter().all(|&u| u < 256));
        let back = QuantizedModel::from_offset_encoded(&encoded, q.scale(), 8, 4, 128);
        assert_eq!(back, q);
    }

    #[test]
    fn quantized_model_classifies_like_original() {
        // 8-bit quantization should not change most predictions (the HDC
        // noise-resilience claim the paper leans on, §I).
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = HdcModel::new(3, 512);
        let protos: Vec<Vec<f32>> =
            (0..3).map(|_| (0..512).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..10 {
                let hv: Vec<f32> = p.iter().map(|&x| x + rng.gen_range(-0.1..0.1)).collect();
                model.train_sample(&hv, c, 1.0);
            }
        }
        let q = QuantizedModel::quantize(&model, 8).dequantize();
        let mut agree = 0;
        let total = 100;
        for _ in 0..total {
            let c = rng.gen_range(0..3usize);
            let hv: Vec<f32> = protos[c].iter().map(|&x| x + rng.gen_range(-0.2..0.2)).collect();
            if model.classify(&hv) == q.classify(&hv) {
                agree += 1;
            }
        }
        assert!(agree >= 98, "agreement {agree}/{total}");
    }

    #[test]
    fn zero_model_quantizes_safely() {
        let model = HdcModel::new(2, 16);
        let q = QuantizedModel::quantize(&model, 8);
        assert!(q.values().iter().all(|&v| v == 0));
        assert_eq!(q.dequantize(), model);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn extreme_bit_width_rejected() {
        let model = trained_model(6);
        let _ = QuantizedModel::quantize(&model, 1);
    }
}
