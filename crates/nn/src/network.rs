//! Sequential networks, SGD training, and the paper's three baselines.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, ReLU};
use crate::loss::{argmax_rows, cross_entropy};
use crate::tensor::Tensor;

/// A feed-forward stack of layers trained with SGD.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rhychee_nn::network::Network;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let lr = Network::logistic_regression(4, 3, &mut rng);
/// assert_eq!(lr.num_params(), 4 * 3 + 3);
/// ```
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    /// Momentum buffers, one per parameter tensor, allocated lazily.
    velocity: Vec<Vec<f32>>,
    input_shape: Vec<usize>,
}

impl Network {
    /// Builds a network from layers; `input_shape` excludes the batch
    /// dimension (e.g. `[1, 28, 28]` for MNIST images).
    pub fn new(layers: Vec<Box<dyn Layer>>, input_shape: Vec<usize>) -> Self {
        Network { layers, velocity: Vec::new(), input_shape }
    }

    /// The paper's CNN baseline: two convolutional + two fully connected
    /// layers (Li et al. architecture class), sized to 43,484 parameters so
    /// a 20,000-parameter HDC model is 2.2× smaller under CKKS-4 packing —
    /// the exact ratio in Fig. 4/5.
    pub fn cnn_mnist<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 8, 5, rng)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Conv2d::new(8, 16, 5, rng)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(256, 150, rng)),
            Box::new(ReLU::new()),
            Box::new(Dense::new(150, 10, rng)),
        ];
        Network::new(layers, vec![1, 28, 28])
    }

    /// The PFMLP baseline: a multilayer perceptron (≈55 k parameters; the
    /// paper reports 54,912 but does not specify the exact layout).
    pub fn mlp_mnist<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::new(784, 69, rng)),
            Box::new(ReLU::new()),
            Box::new(Dense::new(69, 10, rng)),
        ];
        Network::new(layers, vec![784])
    }

    /// The xMK-CKKS baseline: logistic regression (`in_dim·classes +
    /// classes` parameters; 7,850 for MNIST).
    pub fn logistic_regression<R: Rng + ?Sized>(
        in_dim: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Dense::new(in_dim, classes, rng))];
        Network::new(layers, vec![in_dim])
    }

    /// A generic MLP over flat features with the given hidden widths.
    pub fn mlp<R: Rng + ?Sized>(
        in_dim: usize,
        hidden: &[usize],
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut prev = in_dim;
        for &h in hidden {
            layers.push(Box::new(Dense::new(prev, h, rng)));
            layers.push(Box::new(ReLU::new()));
            prev = h;
        }
        layers.push(Box::new(Dense::new(prev, classes, rng)));
        Network::new(layers, vec![in_dim])
    }

    /// Total trainable parameters (the paper's model-size metric).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Expected per-sample input shape (no batch dimension).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Forward pass over a batch.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// One SGD minibatch step; returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics on label/batch mismatches.
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize], lr: f32, momentum: f32) -> f32 {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
        let logits = self.forward(input);
        let (loss, mut grad) = cross_entropy(&logits, labels);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        self.sgd_step(lr, momentum);
        loss
    }

    fn sgd_step(&mut self, lr: f32, momentum: f32) {
        let mut pairs: Vec<(&mut [f32], &mut [f32])> = Vec::new();
        for layer in &mut self.layers {
            pairs.extend(layer.params_grads_mut());
        }
        if self.velocity.len() != pairs.len() {
            self.velocity = pairs.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        for ((param, grad), vel) in pairs.into_iter().zip(&mut self.velocity) {
            for ((p, &g), v) in param.iter_mut().zip(grad.iter()).zip(vel.iter_mut()) {
                *v = momentum * *v - lr * g;
                *p += *v;
            }
        }
    }

    /// Trains one epoch with shuffled minibatches; returns the mean loss.
    ///
    /// `features` are flat per-sample vectors reshaped to the network's
    /// input shape.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        features: &[Vec<f32>],
        labels: &[usize],
        batch_size: usize,
        lr: f32,
        momentum: f32,
        rng: &mut R,
    ) -> f32 {
        assert_eq!(features.len(), labels.len(), "sample/label count mismatch");
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let batch = self.stack(features, chunk);
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            total += self.train_batch(&batch, &batch_labels, lr, momentum);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            total / batches as f32
        }
    }

    /// Classification accuracy over a dataset.
    pub fn accuracy(&mut self, features: &[Vec<f32>], labels: &[usize]) -> f64 {
        if features.is_empty() {
            return 1.0;
        }
        let mut correct = 0;
        for (chunk_feats, chunk_labels) in features.chunks(256).zip(labels.chunks(256)) {
            let idx: Vec<usize> = (0..chunk_feats.len()).collect();
            let batch = self.stack(chunk_feats, &idx);
            let logits = self.forward(&batch);
            let preds = argmax_rows(&logits);
            correct += preds.iter().zip(chunk_labels).filter(|(p, l)| p == l).count();
        }
        correct as f64 / features.len() as f64
    }

    /// Flattens all parameters into one vector (for FedAvg exchange).
    pub fn flatten_params(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.params()).flatten().copied().collect()
    }

    /// Clears the SGD momentum state (e.g. between federated clients
    /// sharing one network instance — velocity must not leak from one
    /// client's local run into another's).
    pub fn reset_momentum(&mut self) {
        for v in &mut self.velocity {
            v.fill(0.0);
        }
    }

    /// Loads parameters from a flat vector produced by
    /// [`Network::flatten_params`] on an identically shaped network.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match.
    pub fn load_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "parameter length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            for (param, _) in layer.params_grads_mut() {
                param.copy_from_slice(&flat[offset..offset + param.len()]);
                offset += param.len();
            }
        }
    }

    /// Stacks selected flat samples into a batch tensor shaped for this
    /// network.
    fn stack(&self, features: &[Vec<f32>], idx: &[usize]) -> Tensor {
        let per = self.input_shape.iter().product::<usize>();
        let mut data = Vec::with_capacity(idx.len() * per);
        for &i in idx {
            assert_eq!(features[i].len(), per, "feature length mismatch at sample {i}");
            data.extend_from_slice(&features[i]);
        }
        let mut shape = vec![idx.len()];
        shape.extend_from_slice(&self.input_shape);
        Tensor::from_vec(&shape, data)
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("layers", &self.layers.len())
            .field("params", &self.num_params())
            .field("input_shape", &self.input_shape)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Two noisy Gaussian blobs in `dim` dimensions.
    fn blobs(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { 0.8 } else { -0.8 };
            feats.push((0..dim).map(|_| center + rng.gen_range(-0.5..0.5)).collect());
            labels.push(c);
        }
        (feats, labels)
    }

    #[test]
    fn baseline_parameter_counts_match_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        // CNN: sized for the 2.2x communication ratio (ceil(43484/4096) = 11
        // ciphertexts vs ceil(20000/4096) = 5).
        assert_eq!(Network::cnn_mnist(&mut rng).num_params(), 43_484);
        // LR: 7,850 exactly as xMK-CKKS reports.
        assert_eq!(Network::logistic_regression(784, 10, &mut rng).num_params(), 7_850);
        // MLP: close to PFMLP's 54,912.
        let mlp = Network::mlp_mnist(&mut rng).num_params();
        assert!((50_000..60_000).contains(&mlp), "MLP params {mlp}");
    }

    #[test]
    fn lr_learns_blobs() {
        let (feats, labels) = blobs(200, 8, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Network::logistic_regression(8, 2, &mut rng);
        for _ in 0..20 {
            net.train_epoch(&feats, &labels, 16, 0.5, 0.0, &mut rng);
        }
        assert!(net.accuracy(&feats, &labels) > 0.95);
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR is not linearly separable: requires the hidden layer.
        let feats: Vec<Vec<f32>> =
            vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let labels = vec![0usize, 1, 1, 0];
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::mlp(2, &[8], 2, &mut rng);
        for _ in 0..500 {
            net.train_epoch(&feats, &labels, 4, 0.5, 0.9, &mut rng);
        }
        assert_eq!(net.accuracy(&feats, &labels), 1.0);
    }

    #[test]
    fn training_reduces_loss() {
        let (feats, labels) = blobs(100, 4, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Network::mlp(4, &[16], 2, &mut rng);
        let first = net.train_epoch(&feats, &labels, 16, 0.1, 0.9, &mut rng);
        let mut last = first;
        for _ in 0..10 {
            last = net.train_epoch(&feats, &labels, 16, 0.1, 0.9, &mut rng);
        }
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn params_flatten_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Network::mlp(6, &[4], 3, &mut rng);
        let flat = net.flatten_params();
        assert_eq!(flat.len(), net.num_params());
        let mut net2 = Network::mlp(6, &[4], 3, &mut rng);
        net2.load_params(&flat);
        assert_eq!(net2.flatten_params(), flat);
        // Identical params → identical predictions.
        let x = Tensor::from_vec(&[1, 6], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(net.forward(&x).data(), net2.forward(&x).data());
    }

    #[test]
    fn averaging_parameters_is_fedavg_compatible() {
        let (f1, l1) = blobs(100, 4, 8);
        let (f2, l2) = blobs(100, 4, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut n1 = Network::logistic_regression(4, 2, &mut rng);
        let flat0 = n1.flatten_params();
        let mut n2 = Network::logistic_regression(4, 2, &mut rng);
        n2.load_params(&flat0); // start from common init, as FL does
        for _ in 0..10 {
            n1.train_epoch(&f1, &l1, 16, 0.3, 0.0, &mut rng);
            n2.train_epoch(&f2, &l2, 16, 0.3, 0.0, &mut rng);
        }
        let avg: Vec<f32> = n1
            .flatten_params()
            .iter()
            .zip(n2.flatten_params().iter())
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        let mut global = Network::logistic_regression(4, 2, &mut rng);
        global.load_params(&avg);
        assert!(global.accuracy(&f1, &l1) > 0.9);
        assert!(global.accuracy(&f2, &l2) > 0.9);
    }

    #[test]
    fn cnn_forward_shape_and_trains_a_step() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::cnn_mnist(&mut rng);
        let feats: Vec<Vec<f32>> = (0..8).map(|i| vec![(i as f32) / 8.0; 784]).collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let loss1 = net.train_epoch(&feats, &labels, 4, 0.05, 0.9, &mut rng);
        assert!(loss1.is_finite() && loss1 > 0.0);
        let acc = net.accuracy(&feats, &labels);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "parameter length")]
    fn load_wrong_size_panics() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut net = Network::logistic_regression(4, 2, &mut rng);
        net.load_params(&[0.0; 3]);
    }
}
