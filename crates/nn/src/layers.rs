//! Neural-network layers with explicit forward/backward passes.
//!
//! The layer set covers the paper's baselines: `Dense`, `Conv2d`,
//! `MaxPool2d`, `ReLU` and `Flatten`. Each layer caches whatever it needs
//! from the forward pass to compute gradients, and exposes its parameters
//! and parameter gradients to the optimizer through [`Layer::params`] /
//! [`Layer::params_grads_mut`].

use rand::Rng;

use crate::tensor::Tensor;

/// A differentiable network layer.
pub trait Layer: Send {
    /// Forward pass; caches activations needed for the backward pass.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backward pass: consumes `∂L/∂output`, accumulates parameter
    /// gradients and returns `∂L/∂input`.
    ///
    /// Must be called after [`Layer::forward`] on the matching input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Flat views of the trainable parameter buffers (empty for stateless
    /// layers).
    fn params(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Paired mutable views of (parameters, gradients) for the optimizer.
    fn params_grads_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        Vec::new()
    }

    /// Zeroes accumulated gradients.
    fn zero_grad(&mut self) {}

    /// Total trainable parameter count.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Fully connected layer: `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    input_cache: Tensor,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dimensions must be positive");
        let std = (2.0 / in_dim as f32).sqrt();
        let weights = (0..in_dim * out_dim).map(|_| gaussian(rng) * std).collect();
        Dense {
            in_dim,
            out_dim,
            weights,
            bias: vec![0.0; out_dim],
            grad_weights: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
            input_cache: Tensor::zeros(&[1, 1]),
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.stride0(), self.in_dim, "dense input width mismatch");
        let batch = input.batch();
        let mut out = Tensor::zeros(&[batch, self.out_dim]);
        for b in 0..batch {
            let x = input.item(b);
            let y = out.item_mut(b);
            for (o, yo) in y.iter_mut().enumerate() {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                *yo = self.bias[o] + dot(row, x);
            }
        }
        self.input_cache = input.clone();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.batch();
        let input = &self.input_cache;
        let mut grad_in = Tensor::zeros(&[batch, self.in_dim]);
        for b in 0..batch {
            let x = input.item(b);
            let g = grad_out.item(b);
            let gi = grad_in.item_mut(b);
            for (o, &go) in g.iter().enumerate() {
                self.grad_bias[o] += go;
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let grow = &mut self.grad_weights[o * self.in_dim..(o + 1) * self.in_dim];
                for i in 0..self.in_dim {
                    grow[i] += go * x[i];
                    gi[i] += go * row[i];
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![&self.weights, &self.bias]
    }

    fn params_grads_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![(&mut self.weights, &mut self.grad_weights), (&mut self.bias, &mut self.grad_bias)]
    }

    fn zero_grad(&mut self) {
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

/// 2D convolution (valid padding, stride 1) over `[B, C, H, W]` inputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// `[out_c, in_c, k, k]` row-major.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    input_cache: Tensor,
}

impl Conv2d {
    /// Creates a conv layer with He-initialized `k × k` kernels.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "conv dimensions must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        let weights = (0..out_channels * fan_in).map(|_| gaussian(rng) * std).collect();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weights,
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; out_channels * fan_in],
            grad_bias: vec![0.0; out_channels],
            input_cache: Tensor::zeros(&[1, 1]),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h - self.kernel + 1, w - self.kernel + 1)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let &[batch, c, h, w] = input.shape() else {
            panic!("Conv2d expects [B, C, H, W], got {:?}", input.shape());
        };
        assert_eq!(c, self.in_channels, "conv input channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let mut out = Tensor::zeros(&[batch, self.out_channels, oh, ow]);
        for b in 0..batch {
            let x = input.item(b);
            let y = out.item_mut(b);
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..c {
                            let w_base = ((oc * c + ic) * k) * k;
                            let x_base = ic * h * w;
                            for ky in 0..k {
                                let wrow = &self.weights[w_base + ky * k..w_base + ky * k + k];
                                let xrow = &x
                                    [x_base + (oy + ky) * w + ox..x_base + (oy + ky) * w + ox + k];
                                acc += dot(wrow, xrow);
                            }
                        }
                        y[(oc * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.input_cache = input.clone();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = &self.input_cache;
        let &[batch, c, h, w] = input.shape() else {
            panic!("missing forward cache");
        };
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let mut grad_in = Tensor::zeros(&[batch, c, h, w]);
        for b in 0..batch {
            let x = input.item(b);
            let g = grad_out.item(b);
            let gi = grad_in.item_mut(b);
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[(oc * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias[oc] += go;
                        for ic in 0..c {
                            let w_base = ((oc * c + ic) * k) * k;
                            let x_base = ic * h * w;
                            for ky in 0..k {
                                for kx in 0..k {
                                    let xi = x_base + (oy + ky) * w + (ox + kx);
                                    self.grad_weights[w_base + ky * k + kx] += go * x[xi];
                                    gi[xi] += go * self.weights[w_base + ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![&self.weights, &self.bias]
    }

    fn params_grads_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![(&mut self.weights, &mut self.grad_weights), (&mut self.bias, &mut self.grad_bias)]
    }

    fn zero_grad(&mut self) {
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

/// 2×2 max pooling with stride 2 over `[B, C, H, W]`.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2d {
    /// Argmax indices from the forward pass, one per output element.
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a 2×2/stride-2 pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let &[batch, c, h, w] = input.shape() else {
            panic!("MaxPool2d expects [B, C, H, W], got {:?}", input.shape());
        };
        assert!(h % 2 == 0 && w % 2 == 0, "pooling needs even spatial dims, got {h}x{w}");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[batch, c, oh, ow]);
        self.argmax = vec![0; batch * c * oh * ow];
        self.in_shape = input.shape().to_vec();
        let mut oi = 0;
        for b in 0..batch {
            let x = input.item(b);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = ch * h * w + (2 * oy + dy) * w + (2 * ox + dx);
                                if x[idx] > best {
                                    best = x[idx];
                                    best_i = b * (c * h * w) + idx;
                                }
                            }
                        }
                        out.data_mut()[oi] = best;
                        self.argmax[oi] = best_i;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&self.in_shape);
        for (g, &idx) in grad_out.data().iter().zip(&self.argmax) {
            grad_in.data_mut()[idx] += g;
        }
        grad_in
    }
}

/// Element-wise rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.mask = input.data().iter().map(|&x| x > 0.0).collect();
        let data = input.data().iter().map(|&x| x.max(0.0)).collect();
        Tensor::from_vec(input.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape(), data)
    }
}

/// Flattens `[B, ...]` to `[B, prod(...)]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.in_shape = input.shape().to_vec();
        input.clone().reshape(&[input.batch(), input.stride0()])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(&self.in_shape)
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Numerically checks ∂L/∂input for a layer with L = sum(output).
    fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input);
        let ones = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        let grad = layer.backward(&ones);
        let eps = 1e-3;
        for i in (0..input.len()).step_by((input.len() / 16).max(1)) {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f_plus: f32 = layer.forward(&plus).data().iter().sum();
            let f_minus: f32 = layer.forward(&minus).data().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < tol,
                "grad[{i}] analytic {} vs numeric {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn dense_forward_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 2, &mut rng);
        // Overwrite with known weights.
        layer.weights.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        layer.bias.copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn dense_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(6, 4, &mut rng);
        let input = Tensor::from_vec(&[2, 6], (0..12).map(|i| (i as f32 * 0.37).sin()).collect());
        check_input_gradient(&mut layer, &input, 1e-2);
    }

    #[test]
    fn dense_weight_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(3, 2, &mut rng);
        let input = Tensor::from_vec(&[1, 3], vec![0.5, -1.0, 2.0]);
        let out = layer.forward(&input);
        let ones = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        layer.zero_grad();
        let _ = layer.backward(&ones);
        let analytic = layer.grad_weights.clone();
        let eps = 1e-3;
        for (i, &grad) in analytic.iter().enumerate() {
            let orig = layer.weights[i];
            layer.weights[i] = orig + eps;
            let f_plus: f32 = layer.forward(&input).data().iter().sum();
            layer.weights[i] = orig - eps;
            let f_minus: f32 = layer.forward(&input).data().iter().sum();
            layer.weights[i] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!((grad - numeric).abs() < 1e-2, "w[{i}]: {grad} vs {numeric}");
        }
    }

    #[test]
    fn conv_output_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 8, 5, &mut rng);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 8, 24, 24]);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(2, 3, 3, &mut rng);
        let input =
            Tensor::from_vec(&[1, 2, 6, 6], (0..72).map(|i| ((i as f32) * 0.13).cos()).collect());
        check_input_gradient(&mut conv, &input, 1e-2);
    }

    #[test]
    fn conv_weight_gradient_check() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut conv = Conv2d::new(1, 2, 3, &mut rng);
        let input =
            Tensor::from_vec(&[1, 1, 5, 5], (0..25).map(|i| ((i as f32) * 0.31).sin()).collect());
        let out = conv.forward(&input);
        let ones = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        conv.zero_grad();
        let _ = conv.backward(&ones);
        let analytic = conv.grad_weights.clone();
        let eps = 1e-3;
        for (i, &grad) in analytic.iter().enumerate() {
            let orig = conv.weights[i];
            conv.weights[i] = orig + eps;
            let f_plus: f32 = conv.forward(&input).data().iter().sum();
            conv.weights[i] = orig - eps;
            let f_minus: f32 = conv.forward(&input).data().iter().sum();
            conv.weights[i] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!((grad - numeric).abs() < 1e-2, "w[{i}]: analytic {grad} vs numeric {numeric}");
        }
    }

    #[test]
    fn conv_bias_gradient_is_output_count() {
        // dL/db_oc with L = sum(out) equals the number of output pixels.
        let mut rng = StdRng::seed_from_u64(16);
        let mut conv = Conv2d::new(1, 3, 3, &mut rng);
        let input = Tensor::zeros(&[2, 1, 6, 6]);
        let out = conv.forward(&input);
        let ones = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        conv.zero_grad();
        let _ = conv.backward(&ones);
        let per_channel = 2.0 * 4.0 * 4.0; // batch * oh * ow
        for &g in &conv.grad_bias {
            assert!((g - per_channel).abs() < 1e-4, "bias grad {g}");
        }
    }

    #[test]
    fn conv_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 1, 1, &mut rng);
        conv.weights[0] = 1.0;
        conv.bias[0] = 0.0;
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(conv.forward(&x).data(), x.data());
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let mut pool = MaxPool2d::new();
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let g = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let gi = pool.backward(&g);
        // Gradient flows only to the max positions.
        assert_eq!(gi.data()[5], 1.0); // value 4.0 at index 5
        assert_eq!(gi.data()[7], 2.0); // value 8.0 at index 7
        assert_eq!(gi.data()[13], 3.0); // value 12.0
        assert_eq!(gi.data()[15], 4.0); // value 16.0
        assert_eq!(gi.data().iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn relu_clamps_and_masks() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::from_vec(&[1, 4], vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(relu.backward(&g).data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut flat = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = flat.forward(&x);
        assert_eq!(y.shape(), &[2, 48]);
        let gi = flat.backward(&y);
        assert_eq!(gi.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn param_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(Dense::new(784, 10, &mut rng).num_params(), 7850);
        assert_eq!(Conv2d::new(1, 8, 5, &mut rng).num_params(), 208);
        assert_eq!(Conv2d::new(8, 16, 5, &mut rng).num_params(), 3216);
        assert_eq!(MaxPool2d::new().num_params(), 0);
    }
}
