//! Minimal neural-network library for the Rhychee-FL baselines.
//!
//! The paper compares its HDC model against three conventional models:
//!
//! * a **CNN** with two convolutional + two fully connected layers
//!   (the Li et al. federated baseline, Fig. 3/4/5),
//! * an **MLP** (the PFMLP baseline, Table II), and
//! * **logistic regression** (the xMK-CKKS baseline, Table II).
//!
//! All three are built here from first principles: a dense [`tensor`],
//! [`layers`] with hand-derived backward passes, softmax cross-entropy
//! [`loss`], and a sequential [`network`] with SGD + momentum.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_nn::network::Network;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Network::mlp(4, &[8], 2, &mut rng);
//! let feats = vec![vec![1.0, 1.0, 1.0, 1.0], vec![-1.0, -1.0, -1.0, -1.0]];
//! let labels = vec![0, 1];
//! for _ in 0..50 {
//!     net.train_epoch(&feats, &labels, 2, 0.5, 0.9, &mut rng);
//! }
//! assert_eq!(net.accuracy(&feats, &labels), 1.0);
//! ```

pub mod layers;
pub mod loss;
pub mod network;
pub mod tensor;

pub use network::Network;
pub use tensor::Tensor;
