//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Computes softmax probabilities row-wise over `[B, L]` logits.
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    for b in 0..out.batch() {
        let row = out.item_mut(b);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    out
}

/// Mean cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad = (softmax(logits) − onehot) / B`,
/// ready to feed into the network's backward pass.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is
/// out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let batch = logits.batch();
    let classes = logits.stride0();
    assert_eq!(labels.len(), batch, "label count must equal batch size");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0;
    for (b, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let p = probs.item(b)[label].max(1e-12);
        loss -= p.ln();
        let row = grad.item_mut(b);
        row[label] -= 1.0;
        for g in row.iter_mut() {
            *g /= batch as f32;
        }
    }
    (loss / batch as f32, grad)
}

/// Index of the per-row maximum (predicted class) for `[B, L]` logits.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    (0..logits.batch())
        .map(|b| {
            logits
                .item(b)
                .iter()
                .enumerate()
                .max_by(|a, c| a.1.total_cmp(c.1))
                .map(|(i, _)| i)
                .expect("non-empty row")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax(&logits);
        for b in 0..2 {
            let sum: f32 = p.item(b).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(p.item(b).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]));
        let b = softmax(&Tensor::from_vec(&[1, 3], vec![101.0, 102.0, 103.0]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let confident = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = cross_entropy(&confident, &[0]);
        assert!(loss < 1e-6);
        let wrong = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = cross_entropy(&wrong, &[1]);
        assert!(loss > 10.0);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let numeric =
                (cross_entropy(&plus, &labels).0 - cross_entropy(&minus, &labels).0) / (2.0 * eps);
            assert!((grad.data()[i] - numeric).abs() < 1e-3, "grad[{i}]");
        }
    }

    #[test]
    fn argmax_picks_largest() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0]);
        assert_eq!(argmax_rows(&logits), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn mismatched_labels_panic() {
        let logits = Tensor::zeros(&[2, 3]);
        let _ = cross_entropy(&logits, &[0]);
    }
}
