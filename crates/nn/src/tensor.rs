//! A minimal dense f32 tensor.
//!
//! Just enough machinery for the paper's baselines (a small CNN, an MLP
//! and logistic regression): shape bookkeeping, element access and a few
//! bulk operations. Layouts are row-major; batch is always the leading
//! dimension.

/// A dense row-major tensor of `f32`.
///
/// # Examples
///
/// ```
/// use rhychee_nn::tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty() && shape.iter().all(|&d| d > 0), "invalid shape {shape:?}");
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Builds a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Leading (batch) dimension.
    pub fn batch(&self) -> usize {
        self.shape[0]
    }

    /// Elements per batch item.
    pub fn stride0(&self) -> usize {
        self.data.len() / self.shape[0]
    }

    /// Slice of batch item `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn item(&self, b: usize) -> &[f32] {
        let s = self.stride0();
        &self.data[b * s..(b + 1) * s]
    }

    /// Mutable slice of batch item `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn item_mut(&mut self, b: usize) -> &mut [f32] {
        let s = self.stride0();
        &mut self.data[b * s..(b + 1) * s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[4, 1, 28, 28]);
        assert_eq!(t.len(), 4 * 784);
        assert_eq!(t.batch(), 4);
        assert_eq!(t.stride0(), 784);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_and_item_access() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.item(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.item(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).reshape(&[4]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn mismatched_data_rejected() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn bad_reshape_rejected() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    fn item_mut_writes_through() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.item_mut(1)[0] = 7.0;
        assert_eq!(t.data(), &[0.0, 0.0, 7.0, 0.0]);
    }
}
