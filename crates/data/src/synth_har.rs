//! Synthetic human-activity-recognition (HAR) dataset.
//!
//! Substitutes the UCI "Human Activity Recognition Using Smartphones"
//! dataset (unavailable offline): six activity classes are simulated as
//! parameterized 6-channel inertial windows (accelerometer + gyroscope,
//! 128 samples @ 50 Hz), then summarized by a 561-dimensional statistical
//! feature vector — matching the real dataset's class count and feature
//! dimensionality, which is what the paper's HAR experiments depend on.
//!
//! Feature layout: 17 derived signals × 33 features = 561.
//!
//! * signals: body acc x/y/z, gyro x/y/z, jerk-acc x/y/z, jerk-gyro
//!   x/y/z, plus 5 magnitude/projection signals
//! * features per signal: 14 time-domain + 19 frequency-domain

use rand::Rng;

/// Samples per window (2.56 s @ 50 Hz, like the UCI dataset).
pub const WINDOW: usize = 128;

/// Number of activity classes.
pub const NUM_CLASSES: usize = 6;

/// Output feature dimension (matches UCI HAR).
pub const FEATURE_DIM: usize = 561;

const CHANNELS: usize = 6;
const FEATURES_PER_SIGNAL: usize = 33;
const NUM_SIGNALS: usize = 17;

/// The six activities, in UCI label order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Level walking, ~1.8 Hz cadence.
    Walking,
    /// Stair ascent: slower cadence, stronger vertical component.
    WalkingUpstairs,
    /// Stair descent: sharper impacts (richer harmonics).
    WalkingDownstairs,
    /// Seated: static, tilted gravity vector.
    Sitting,
    /// Upright static posture.
    Standing,
    /// Horizontal posture: gravity rotated onto another axis.
    Laying,
}

impl Activity {
    /// All activities in label order.
    pub fn all() -> [Activity; NUM_CLASSES] {
        [
            Activity::Walking,
            Activity::WalkingUpstairs,
            Activity::WalkingDownstairs,
            Activity::Sitting,
            Activity::Standing,
            Activity::Laying,
        ]
    }

    /// Numeric class label.
    pub fn label(self) -> usize {
        match self {
            Activity::Walking => 0,
            Activity::WalkingUpstairs => 1,
            Activity::WalkingDownstairs => 2,
            Activity::Sitting => 3,
            Activity::Standing => 4,
            Activity::Laying => 5,
        }
    }

    /// Simulation signature: (cadence Hz, acc amplitude, harmonic weight,
    /// gravity unit vector, noise σ).
    fn signature(self) -> (f32, f32, f32, [f32; 3], f32) {
        match self {
            // Dynamic classes separated mainly by cadence/harmonics; the
            // walking trio overlaps under per-sample frequency jitter,
            // like the real dataset's hardest confusions.
            Activity::Walking => (1.7, 0.9, 0.25, [0.0, 0.0, 1.0], 0.12),
            Activity::WalkingUpstairs => (1.45, 1.05, 0.35, [0.12, 0.0, 0.99], 0.14),
            Activity::WalkingDownstairs => (1.6, 1.15, 0.5, [-0.10, 0.0, 0.99], 0.15),
            // Static classes differ only by posture (gravity direction);
            // sitting vs standing is the classic near-confusable pair.
            Activity::Sitting => (0.0, 0.0, 0.0, [0.22, 0.06, 0.97], 0.06),
            Activity::Standing => (0.0, 0.0, 0.0, [0.05, 0.02, 1.0], 0.055),
            Activity::Laying => (0.0, 0.0, 0.0, [0.1, 0.97, 0.2], 0.06),
        }
    }
}

/// Simulates one 6-channel inertial window for an activity.
///
/// Returns `[channel][sample]` with channels `acc x/y/z, gyro x/y/z`.
pub fn simulate_window<R: Rng + ?Sized>(activity: Activity, rng: &mut R) -> Vec<Vec<f32>> {
    let (freq, amp, harmonic, gravity, noise) = activity.signature();
    // Per-sample natural variation.
    let freq = freq * (1.0 + rng.gen_range(-0.08..0.08f32));
    let amp = amp * (1.0 + rng.gen_range(-0.2..0.2f32));
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    // Small random re-orientation of the gravity vector (device placement).
    let tilt = rng.gen_range(-0.08..0.08f32);
    let mut out = vec![vec![0.0f32; WINDOW]; CHANNELS];
    let dt = 1.0 / 50.0;
    // Indexing: each sample writes one column across all six channel rows.
    #[allow(clippy::needless_range_loop)]
    for i in 0..WINDOW {
        let t = i as f32 * dt;
        let w = std::f32::consts::TAU * freq * t + phase;
        // Gait model: vertical bounce at cadence + harmonic impact, lateral
        // sway at half cadence.
        let bounce = amp * (w.sin() + harmonic * (2.0 * w).sin());
        let sway = 0.35 * amp * (0.5 * w).sin();
        let forward = 0.5 * amp * (w + 0.7).cos();
        out[0][i] = gravity[0] + tilt + sway + noise * gaussian(rng);
        out[1][i] = gravity[1] + forward + noise * gaussian(rng);
        out[2][i] = gravity[2] + bounce + noise * gaussian(rng);
        // Gyroscope: angular velocity tracks the derivative of posture sway.
        let gyro_amp = 0.6 * amp;
        out[3][i] = gyro_amp * (w + 0.3).cos() + noise * gaussian(rng);
        out[4][i] = 0.5 * gyro_amp * (0.5 * w).cos() + noise * gaussian(rng);
        out[5][i] = 0.3 * gyro_amp * (w + 1.1).sin() + noise * gaussian(rng);
    }
    out
}

/// Extracts the 561-dimensional feature vector from a 6-channel window.
///
/// # Panics
///
/// Panics if the window does not have 6 channels of [`WINDOW`] samples.
pub fn extract_features(window: &[Vec<f32>]) -> Vec<f32> {
    assert_eq!(window.len(), CHANNELS, "expected 6 channels");
    assert!(window.iter().all(|c| c.len() == WINDOW), "expected {WINDOW}-sample channels");

    // Derived signals: 6 raw + 6 jerk + 4 magnitudes + 1 vertical projection.
    let mut signals: Vec<Vec<f32>> = Vec::with_capacity(NUM_SIGNALS);
    signals.extend(window.iter().cloned());
    for c in window {
        signals.push(jerk(c));
    }
    signals.push(magnitude(&window[0], &window[1], &window[2])); // acc mag
    signals.push(magnitude(&window[3], &window[4], &window[5])); // gyro mag
    let jerk_acc: Vec<Vec<f32>> = (0..3).map(|i| jerk(&window[i])).collect();
    let jerk_gyro: Vec<Vec<f32>> = (3..6).map(|i| jerk(&window[i])).collect();
    signals.push(magnitude(&jerk_acc[0], &jerk_acc[1], &jerk_acc[2]));
    signals.push(magnitude(&jerk_gyro[0], &jerk_gyro[1], &jerk_gyro[2]));
    // Vertical projection: dominant-gravity-axis component (z).
    signals.push(window[2].clone());
    debug_assert_eq!(signals.len(), NUM_SIGNALS);

    let mut features = Vec::with_capacity(FEATURE_DIM);
    for s in &signals {
        features.extend(signal_features(s));
    }
    debug_assert_eq!(features.len(), FEATURE_DIM);
    features
}

/// Generates one labelled HAR feature vector.
pub fn generate_sample<R: Rng + ?Sized>(activity: Activity, rng: &mut R) -> Vec<f32> {
    extract_features(&simulate_window(activity, rng))
}

/// 14 time-domain + 19 frequency-domain features of one signal.
fn signal_features(s: &[f32]) -> Vec<f32> {
    let n = s.len() as f32;
    let mean = s.iter().sum::<f32>() / n;
    let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
    let std = var.sqrt();
    let min = s.iter().copied().fold(f32::INFINITY, f32::min);
    let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let energy = s.iter().map(|x| x * x).sum::<f32>() / n;
    let rms = energy.sqrt();
    let mad = s.iter().map(|x| (x - mean).abs()).sum::<f32>() / n;
    let range = max - min;
    let zc = s.windows(2).filter(|w| (w[0] - mean) * (w[1] - mean) < 0.0).count() as f32 / n;
    let ac = |lag: usize| -> f32 {
        if var < 1e-12 {
            return 0.0;
        }
        s.windows(lag + 1).map(|w| (w[0] - mean) * (w[lag] - mean)).sum::<f32>()
            / ((n - lag as f32) * var)
    };
    let skew = if std > 1e-6 {
        s.iter().map(|x| ((x - mean) / std).powi(3)).sum::<f32>() / n
    } else {
        0.0
    };
    let kurt = if std > 1e-6 {
        s.iter().map(|x| ((x - mean) / std).powi(4)).sum::<f32>() / n - 3.0
    } else {
        0.0
    };
    let mut out =
        vec![mean, std, min, max, energy, rms, mad, range, zc, ac(1), ac(2), ac(4), skew, kurt];

    // Frequency domain: 16 log band energies from a 64-point DFT magnitude
    // (grouped into 16 bands of 2 bins over the first 32 bins), dominant
    // frequency bin, spectral centroid, spectral entropy.
    let spec = dft_magnitude(s, 64);
    let half = &spec[..32];
    for band in half.chunks(2) {
        let e: f32 = band.iter().map(|m| m * m).sum();
        out.push((e + 1e-9).ln());
    }
    let total: f32 = half.iter().map(|m| m * m).sum::<f32>() + 1e-9;
    let dominant = half
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as f32)
        .unwrap_or(0.0);
    let centroid = half.iter().enumerate().map(|(i, m)| i as f32 * m * m).sum::<f32>() / total;
    let entropy = -half
        .iter()
        .map(|m| {
            let p = m * m / total;
            if p > 1e-12 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f32>();
    out.push(dominant);
    out.push(centroid);
    out.push(entropy);
    debug_assert_eq!(out.len(), FEATURES_PER_SIGNAL);
    out
}

/// First difference scaled by the sample rate ("jerk" in UCI terms).
fn jerk(s: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(s.len());
    out.push(0.0);
    out.extend(s.windows(2).map(|w| (w[1] - w[0]) * 50.0));
    out
}

/// Euclidean magnitude of a 3-axis signal.
fn magnitude(x: &[f32], y: &[f32], z: &[f32]) -> Vec<f32> {
    x.iter().zip(y).zip(z).map(|((&a, &b), &c)| (a * a + b * b + c * c).sqrt()).collect()
}

/// Magnitudes of the first `bins` DFT coefficients (naive O(n·bins) DFT —
/// windows are only 128 samples).
fn dft_magnitude(s: &[f32], bins: usize) -> Vec<f32> {
    let n = s.len();
    (0..bins)
        .map(|k| {
            let (mut re, mut im) = (0.0f32, 0.0f32);
            for (i, &x) in s.iter().enumerate() {
                let ang = -std::f32::consts::TAU * (k * i) as f32 / n as f32;
                re += x * ang.cos();
                im += x * ang.sin();
            }
            (re * re + im * im).sqrt() / n as f32
        })
        .collect()
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn feature_dimension_matches_uci() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = generate_sample(Activity::Walking, &mut rng);
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn all_activities_generate() {
        let mut rng = StdRng::seed_from_u64(2);
        for a in Activity::all() {
            let f = generate_sample(a, &mut rng);
            assert_eq!(f.len(), 561);
        }
    }

    #[test]
    fn labels_are_consecutive() {
        let labels: Vec<usize> = Activity::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dynamic_activities_have_more_energy_than_static() {
        let mut rng = StdRng::seed_from_u64(3);
        let energy = |a: Activity, rng: &mut StdRng| -> f32 {
            let w = simulate_window(a, rng);
            // Gyro z-channel variance as a motion proxy.
            let c = &w[3];
            let mean = c.iter().sum::<f32>() / c.len() as f32;
            c.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / c.len() as f32
        };
        let walking = energy(Activity::Walking, &mut rng);
        let sitting = energy(Activity::Sitting, &mut rng);
        assert!(walking > 10.0 * sitting, "walking {walking} vs sitting {sitting}");
    }

    #[test]
    fn static_activities_differ_by_gravity_orientation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean_axis = |a: Activity, axis: usize, rng: &mut StdRng| -> f32 {
            let w = simulate_window(a, rng);
            w[axis].iter().sum::<f32>() / WINDOW as f32
        };
        // Laying rotates gravity onto the y axis; standing keeps it on z.
        let lay_y = mean_axis(Activity::Laying, 1, &mut rng);
        let stand_y = mean_axis(Activity::Standing, 1, &mut rng);
        assert!(lay_y > stand_y + 0.5, "lay_y {lay_y} vs stand_y {stand_y}");
    }

    #[test]
    fn walking_cadence_appears_in_spectrum() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = simulate_window(Activity::Walking, &mut rng);
        let spec = dft_magnitude(&w[2], 32);
        // 1.8 Hz over a 2.56 s window → bin ≈ 4.6; dominant non-DC bin
        // should be in the 3..8 range.
        let dom = spec[2..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + 2)
            .unwrap();
        assert!((3..=8).contains(&dom), "dominant bin {dom}");
    }

    #[test]
    fn intra_class_distance_smaller_than_inter_class() {
        let mut rng = StdRng::seed_from_u64(6);
        let avg = |a: Activity, rng: &mut StdRng| -> Vec<f32> {
            let mut acc = vec![0.0f32; FEATURE_DIM];
            for _ in 0..5 {
                for (acc_i, f_i) in acc.iter_mut().zip(generate_sample(a, rng)) {
                    *acc_i += f_i / 5.0;
                }
            }
            acc
        };
        let w1 = avg(Activity::Walking, &mut rng);
        let w2 = avg(Activity::Walking, &mut rng);
        let lay = avg(Activity::Laying, &mut rng);
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>().sqrt()
        };
        assert!(dist(&w1, &w2) < dist(&w1, &lay), "class means should separate");
    }

    #[test]
    fn jerk_and_magnitude_shapes() {
        let s = vec![1.0f32, 2.0, 4.0];
        assert_eq!(jerk(&s), vec![0.0, 50.0, 100.0]);
        let m = magnitude(&[3.0], &[4.0], &[0.0]);
        assert_eq!(m, vec![5.0]);
    }
}
