//! Core dataset types shared by every experiment.

/// An in-memory labelled dataset with flat `f32` feature vectors.
///
/// # Examples
///
/// ```
/// use rhychee_data::dataset::Dataset;
///
/// let ds = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 1], 2);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.feature_dim(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<Vec<f32>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating shape consistency.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, feature dims are inconsistent, or any
    /// label is `>= num_classes`.
    pub fn new(features: Vec<Vec<f32>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.len(), labels.len(), "sample/label count mismatch");
        if let Some(first) = features.first() {
            assert!(
                features.iter().all(|f| f.len() == first.len()),
                "inconsistent feature dimensions"
            );
        }
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Dataset { features, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn feature_dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of classes L.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The feature matrix.
    pub fn features(&self) -> &[Vec<f32>] {
        &self.features
    }

    /// Mutable access to the feature matrix (for in-place transforms such
    /// as standardization; shapes must be preserved).
    pub fn features_mut(&mut self) -> &mut [Vec<f32>] {
        &mut self.features
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Extracts the subset at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// A train/test split of a generated dataset.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            vec![vec![0.0; 3], vec![1.0; 3], vec![2.0; 3], vec![3.0; 3]],
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.feature_dim(), 3);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.class_counts(), vec![2, 2]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = tiny();
        let sub = ds.subset(&[1, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[1, 1]);
        assert_eq!(sub.features()[0], vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_rejected() {
        let _ = Dataset::new(vec![vec![0.0]], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        let _ = Dataset::new(vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    fn empty_dataset_is_valid() {
        let ds = Dataset::default();
        assert!(ds.is_empty());
        assert_eq!(ds.feature_dim(), 0);
    }
}
