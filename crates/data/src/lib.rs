//! Synthetic datasets and federated partitioning for Rhychee-FL.
//!
//! The paper evaluates on MNIST and UCI HAR, neither of which is
//! available in this offline reproduction. This crate provides faithful
//! synthetic stand-ins (documented in the repository's DESIGN.md):
//!
//! * [`synth_mnist`] — 28×28 digit glyphs rendered from per-class stroke
//!   skeletons with affine jitter and pixel noise (10 classes, 784
//!   features);
//! * [`synth_har`] — six simulated activities as 6-channel inertial
//!   windows summarized into the UCI HAR 561-feature vector;
//! * [`partition`] — the Dirichlet non-IID partitioner of Li et al. used
//!   in the paper's setup (α = 0.5), plus an IID partitioner;
//! * [`dataset`] / [`config`] — dataset containers and generation entry
//!   points.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_data::{DatasetKind, SyntheticConfig};
//! use rhychee_data::partition::dirichlet_partition;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let split = SyntheticConfig::small(DatasetKind::Mnist).generate(1)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let shards = dirichlet_partition(&split.train, 10, 0.5, &mut rng);
//! assert_eq!(shards.len(), 10);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod dataset;
pub mod partition;
pub mod synth_har;
pub mod synth_mnist;

pub use config::{DatasetKind, FeatureStats, GenerateError, SyntheticConfig};
pub use dataset::{Dataset, TrainTest};
pub use partition::{dirichlet_partition, dirichlet_partition_indices, iid_partition, label_skew};
