//! Procedural MNIST-like digit generator.
//!
//! The real MNIST files are unavailable in this offline reproduction, so
//! digits are rendered from per-class stroke skeletons (a seven-segment
//! layout extended with diagonals) with random affine jitter, stroke
//! width, and pixel noise. The result is a 10-class, 784-feature image
//! task with genuine intra-class variability: spatially structured enough
//! for the CNN baseline to exploit locality, and smooth enough for RBF
//! HDC encoding — the properties the paper's MNIST experiments rest on.

use rand::Rng;

/// Image side length (MNIST-compatible 28×28).
pub const IMAGE_SIDE: usize = 28;

/// Feature dimension per image (784).
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;

/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// A 2D line segment in normalized glyph coordinates (`[0,1]²`).
#[derive(Debug, Clone, Copy)]
struct Segment {
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
}

const fn seg(x0: f32, y0: f32, x1: f32, y1: f32) -> Segment {
    Segment { x0, y0, x1, y1 }
}

/// Seven-segment-style endpoints (x grows right, y grows down):
/// corners at (0.2/0.8, 0.1/0.5/0.9).
const A: Segment = seg(0.2, 0.1, 0.8, 0.1); // top
const B: Segment = seg(0.8, 0.1, 0.8, 0.5); // top-right
const C: Segment = seg(0.8, 0.5, 0.8, 0.9); // bottom-right
const D: Segment = seg(0.2, 0.9, 0.8, 0.9); // bottom
const E: Segment = seg(0.2, 0.5, 0.2, 0.9); // bottom-left
const F: Segment = seg(0.2, 0.1, 0.2, 0.5); // top-left
const G: Segment = seg(0.2, 0.5, 0.8, 0.5); // middle
/// Diagonal flourishes that break seven-segment symmetry for 1 and 7.
const ONE_SERIF: Segment = seg(0.65, 0.25, 0.8, 0.1);
const SEVEN_DIAG: Segment = seg(0.8, 0.5, 0.5, 0.9);

/// Number of handwriting styles per digit (distinct intra-class modes).
pub const STYLES_PER_DIGIT: usize = 3;

/// Stroke skeleton for each digit class.
fn skeleton(digit: usize) -> Vec<Segment> {
    match digit {
        0 => vec![A, B, C, D, E, F],
        1 => vec![B, C, ONE_SERIF],
        2 => vec![A, B, G, E, D],
        3 => vec![A, B, G, C, D],
        4 => vec![F, G, B, C],
        5 => vec![A, F, G, C, D],
        6 => vec![A, F, G, E, D, C],
        7 => vec![A, B, SEVEN_DIAG],
        8 => vec![A, B, C, D, E, F, G],
        9 => vec![A, B, C, D, F, G],
        _ => panic!("digit {digit} out of range"),
    }
}

/// Stroke skeleton for one handwriting style of a digit: the base
/// skeleton with a deterministic per-style deformation of every endpoint.
///
/// Multiple distinct modes per class are what make real handwritten
/// digits *not* linearly separable in pixel space; one prototype with
/// affine jitter is. Style 0 is the canonical skeleton.
fn styled_skeleton(digit: usize, style: usize) -> Vec<Segment> {
    let base = skeleton(digit);
    if style == 0 {
        return base;
    }
    base.into_iter()
        .enumerate()
        .map(|(k, s)| {
            let d = |salt: u64| style_offset(digit as u64, style as u64, k as u64, salt);
            seg(s.x0 + d(0), s.y0 + d(1), s.x1 + d(2), s.y1 + d(3))
        })
        .collect()
}

/// Deterministic pseudo-random endpoint offset in [−0.11, 0.11].
fn style_offset(digit: u64, style: u64, segment: u64, salt: u64) -> f32 {
    // splitmix64 over the identifying tuple.
    let mut z = digit
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(style.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(segment.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f32 / u64::MAX as f32 - 0.5) * 0.22
}

/// Rendering jitter parameters.
#[derive(Debug, Clone, Copy)]
pub struct GlyphJitter {
    /// Max absolute translation in normalized units.
    pub translate: f32,
    /// Scale range half-width (scale in `[1−s, 1+s]`).
    pub scale: f32,
    /// Max absolute rotation in radians.
    pub rotate: f32,
    /// Stroke half-width range `[min, max]` in normalized units.
    pub stroke: (f32, f32),
    /// Additive pixel noise standard deviation.
    pub noise: f32,
}

impl Default for GlyphJitter {
    /// Calibrated so the task separates model classes the way real MNIST
    /// does: a linear classifier cannot saturate (rotation/translation
    /// moves class manifolds across pixel space), while kernel methods
    /// (HDC-RBF) and the CNN still reach high accuracy.
    fn default() -> Self {
        GlyphJitter {
            translate: 0.09,
            scale: 0.16,
            rotate: 0.20,
            stroke: (0.045, 0.10),
            noise: 0.08,
        }
    }
}

/// Renders one jittered digit image as 784 floats in `[0, 1]`.
///
/// # Panics
///
/// Panics if `digit >= 10`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rhychee_data::synth_mnist::{render_digit, GlyphJitter, IMAGE_PIXELS};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let img = render_digit(3, &GlyphJitter::default(), &mut rng);
/// assert_eq!(img.len(), IMAGE_PIXELS);
/// assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
/// ```
pub fn render_digit<R: Rng + ?Sized>(digit: usize, jitter: &GlyphJitter, rng: &mut R) -> Vec<f32> {
    let style = rng.gen_range(0..STYLES_PER_DIGIT);
    let mut segments = styled_skeleton(digit, style);
    // Sloppy handwriting: occasionally drop a stroke entirely (keeping at
    // least two) and draw the rest at partial length. This overlaps the
    // class-conditional pixel distributions the way real handwriting
    // does, which is what keeps a linear pixel classifier from
    // saturating.
    if segments.len() > 2 && rng.gen::<f32>() < 0.10 {
        let victim = rng.gen_range(0..segments.len());
        segments.remove(victim);
    }
    for s in segments.iter_mut() {
        let keep = rng.gen_range(0.85..=1.0f32);
        let from_start = rng.gen::<bool>();
        if from_start {
            s.x1 = s.x0 + (s.x1 - s.x0) * keep;
            s.y1 = s.y0 + (s.y1 - s.y0) * keep;
        } else {
            s.x0 = s.x1 + (s.x0 - s.x1) * keep;
            s.y0 = s.y1 + (s.y0 - s.y1) * keep;
        }
    }
    // Sample an affine transform: rotate + scale about the glyph center,
    // then translate.
    let angle = rng.gen_range(-jitter.rotate..=jitter.rotate);
    let scale = 1.0 + rng.gen_range(-jitter.scale..=jitter.scale);
    let (tx, ty) = (
        rng.gen_range(-jitter.translate..=jitter.translate),
        rng.gen_range(-jitter.translate..=jitter.translate),
    );
    let stroke = rng.gen_range(jitter.stroke.0..=jitter.stroke.1);
    let (sin, cos) = angle.sin_cos();

    let transform = |x: f32, y: f32| -> (f32, f32) {
        let (cx, cy) = (x - 0.5, y - 0.5);
        let rx = scale * (cos * cx - sin * cy) + 0.5 + tx;
        let ry = scale * (sin * cx + cos * cy) + 0.5 + ty;
        (rx, ry)
    };
    let transformed: Vec<Segment> = segments
        .iter()
        .map(|s| {
            let (x0, y0) = transform(s.x0, s.y0);
            let (x1, y1) = transform(s.x1, s.y1);
            seg(x0, y0, x1, y1)
        })
        .collect();

    let mut img = vec![0.0f32; IMAGE_PIXELS];
    for (i, px) in img.iter_mut().enumerate() {
        let x = ((i % IMAGE_SIDE) as f32 + 0.5) / IMAGE_SIDE as f32;
        let y = ((i / IMAGE_SIDE) as f32 + 0.5) / IMAGE_SIDE as f32;
        let d = transformed
            .iter()
            .map(|s| point_segment_distance(x, y, s))
            .fold(f32::INFINITY, f32::min);
        // Soft stroke edge: full intensity inside, smooth falloff outside.
        let ink = 1.0 - smoothstep(stroke * 0.6, stroke * 1.4, d);
        let noisy = ink + jitter.noise * gaussian(rng);
        *px = noisy.clamp(0.0, 1.0);
    }
    img
}

/// Euclidean distance from point to segment.
fn point_segment_distance(px: f32, py: f32, s: &Segment) -> f32 {
    let (dx, dy) = (s.x1 - s.x0, s.y1 - s.y0);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - s.x0) * dx + (py - s.y0) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (s.x0 + t * dx, s.y0 + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

fn smoothstep(lo: f32, hi: f32, x: f32) -> f32 {
    let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn all_digits_render() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in 0..NUM_CLASSES {
            let img = render_digit(d, &GlyphJitter::default(), &mut rng);
            assert_eq!(img.len(), 784);
            let ink: f32 = img.iter().sum();
            assert!(ink > 10.0, "digit {d} should have visible strokes, ink={ink}");
            assert!(ink < 500.0, "digit {d} should not flood the image, ink={ink}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_ten_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = render_digit(10, &GlyphJitter::default(), &mut rng);
    }

    #[test]
    fn same_class_images_differ_but_correlate() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = render_digit(8, &GlyphJitter::default(), &mut rng);
        let b = render_digit(8, &GlyphJitter::default(), &mut rng);
        assert_ne!(a, b, "jitter must create intra-class variety");
        // Average correlation over several pairs (single pairs vary with
        // jitter alignment, handwriting style, and stroke dropout).
        let mut acc = 0.0;
        for _ in 0..20 {
            let x = render_digit(8, &GlyphJitter::default(), &mut rng);
            let y = render_digit(8, &GlyphJitter::default(), &mut rng);
            acc += correlation(&x, &y);
        }
        assert!(acc / 20.0 > 0.12, "same class should correlate on average: {}", acc / 20.0);
    }

    #[test]
    fn distinct_classes_correlate_less_than_same_class() {
        let mut rng = StdRng::seed_from_u64(4);
        let jitter = GlyphJitter::default();
        // Average over several renders to avoid jitter flukes.
        let avg_corr = |d1: usize, d2: usize, rng: &mut StdRng| {
            let mut acc = 0.0;
            for _ in 0..10 {
                let a = render_digit(d1, &jitter, rng);
                let b = render_digit(d2, &jitter, rng);
                acc += correlation(&a, &b);
            }
            acc / 10.0
        };
        let same = avg_corr(0, 0, &mut rng);
        let diff = avg_corr(0, 1, &mut rng);
        assert!(same > diff, "same-class corr {same} should beat cross-class {diff}");
    }

    #[test]
    fn one_and_seven_have_distinguishing_strokes() {
        // 1 = {B, C, serif}, 7 = {A, B, diagonal}: same count but distinct
        // segment geometry.
        let ends = |segs: &[Segment]| -> Vec<(i32, i32, i32, i32)> {
            let q = |v: f32| (v * 100.0).round() as i32;
            let mut out: Vec<_> =
                segs.iter().map(|s| (q(s.x0), q(s.y0), q(s.x1), q(s.y1))).collect();
            out.sort_unstable();
            out
        };
        assert_ne!(ends(&skeleton(1)), ends(&skeleton(7)));
    }

    #[test]
    fn rendering_is_deterministic_given_seed() {
        // Style choice and stroke dropout draw from the RNG, so renders
        // are seed-dependent — but bit-identical for equal seeds.
        let jitter = GlyphJitter::default();
        let a = render_digit(4, &jitter, &mut StdRng::seed_from_u64(5));
        let b = render_digit(4, &jitter, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b, "equal seeds must render identically");
        let c = render_digit(4, &jitter, &mut StdRng::seed_from_u64(99));
        assert_ne!(a, c, "different seeds should draw different styles/jitter");
    }

    #[test]
    fn styles_are_distinct_deterministic_modes() {
        let base = styled_skeleton(3, 0);
        for style in 1..STYLES_PER_DIGIT {
            let variant = styled_skeleton(3, style);
            assert_eq!(variant.len(), base.len());
            let moved = variant
                .iter()
                .zip(&base)
                .any(|(v, b)| (v.x0 - b.x0).abs() > 1e-6 || (v.y1 - b.y1).abs() > 1e-6);
            assert!(moved, "style {style} must deform the skeleton");
            // Deterministic: same style twice gives the same skeleton.
            let again = styled_skeleton(3, style);
            for (v, w) in variant.iter().zip(&again) {
                assert_eq!((v.x0, v.y0, v.x1, v.y1), (w.x0, w.y0, w.x1, w.y1));
            }
        }
    }

    fn correlation(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let ma = a.iter().sum::<f32>() / n;
        let mb = b.iter().sum::<f32>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma).powi(2);
            vb += (y - mb).powi(2);
        }
        cov / (va.sqrt() * vb.sqrt() + 1e-9)
    }
}
