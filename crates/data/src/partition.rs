//! Federated data partitioning.
//!
//! Implements the Dirichlet label-skew partitioner of Li et al. ("Federated
//! learning on non-IID data silos"), the scheme used in the paper's
//! experimental setup, plus a plain IID partitioner for ablations.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// Splits a dataset into `clients` non-IID shards via per-class Dirichlet
/// proportions with concentration `alpha`.
///
/// Smaller `alpha` means more skew: `alpha → 0` gives each class to few
/// clients; `alpha → ∞` approaches IID. Li et al. (and the paper) use
/// `alpha = 0.5`.
///
/// Every client is guaranteed at least one sample (greedy rebalancing from
/// the largest shard if the draw left someone empty).
///
/// # Panics
///
/// Panics if `clients` is zero, `alpha` is not positive, or the dataset
/// has fewer samples than clients.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rhychee_data::dataset::Dataset;
/// use rhychee_data::partition::dirichlet_partition;
///
/// let ds = Dataset::new(
///     (0..100).map(|i| vec![i as f32]).collect(),
///     (0..100).map(|i| i % 2).collect(),
///     2,
/// );
/// let mut rng = StdRng::seed_from_u64(1);
/// let shards = dirichlet_partition(&ds, 5, 0.5, &mut rng);
/// assert_eq!(shards.len(), 5);
/// assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 100);
/// ```
pub fn dirichlet_partition<R: Rng + ?Sized>(
    data: &Dataset,
    clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<Dataset> {
    let assignment =
        dirichlet_partition_indices(data.labels(), data.num_classes(), clients, alpha, rng);
    assignment.iter().map(|idx| data.subset(idx)).collect()
}

/// Index-level Dirichlet partitioner: returns, per client, the indices of
/// the samples assigned to it. Useful when the samples themselves live in
/// another representation (e.g. pre-encoded hypervectors).
///
/// Semantics and panics are identical to [`dirichlet_partition`].
pub fn dirichlet_partition_indices<R: Rng + ?Sized>(
    labels: &[usize],
    num_classes: usize,
    clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(clients > 0, "need at least one client");
    assert!(alpha > 0.0, "Dirichlet concentration must be positive");
    assert!(labels.len() >= clients, "fewer samples than clients");

    // Indices per class, shuffled.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); clients];
    for class_indices in by_class.iter_mut() {
        class_indices.shuffle(rng);
        if class_indices.is_empty() {
            continue;
        }
        let props = dirichlet(clients, alpha, rng);
        // Convert proportions to cumulative cut points.
        let n = class_indices.len();
        let mut start = 0usize;
        let mut cum = 0.0;
        for (c, &p) in props.iter().enumerate() {
            cum += p;
            let end = if c == clients - 1 { n } else { (cum * n as f64).round() as usize };
            let end = end.clamp(start, n);
            assignment[c].extend_from_slice(&class_indices[start..end]);
            start = end;
        }
    }

    // Guarantee non-empty shards: move one sample from the largest shard.
    while let Some(empty) = assignment.iter().position(Vec::is_empty) {
        let largest = assignment
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.len())
            .map(|(i, _)| i)
            .expect("non-empty set of clients");
        let moved = assignment[largest].pop().expect("largest shard has samples");
        assignment[empty].push(moved);
    }

    assignment
}

/// Splits a dataset into `clients` IID shards of near-equal size.
///
/// # Panics
///
/// Panics if `clients` is zero or exceeds the sample count.
pub fn iid_partition<R: Rng + ?Sized>(data: &Dataset, clients: usize, rng: &mut R) -> Vec<Dataset> {
    assert!(clients > 0, "need at least one client");
    assert!(data.len() >= clients, "fewer samples than clients");
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(rng);
    let base = data.len() / clients;
    let extra = data.len() % clients;
    let mut shards = Vec::with_capacity(clients);
    let mut start = 0;
    for c in 0..clients {
        let size = base + usize::from(c < extra);
        shards.push(data.subset(&order[start..start + size]));
        start += size;
    }
    shards
}

/// Samples from a symmetric Dirichlet distribution via normalized Gamma
/// draws.
fn dirichlet<R: Rng + ?Sized>(k: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| gamma(alpha, rng).max(1e-12)).collect();
    let sum: f64 = draws.iter().sum();
    draws.into_iter().map(|d| d / sum).collect()
}

/// Gamma(shape, 1) sampler: Marsaglia–Tsang for shape ≥ 1, boosted for
/// shape < 1.
fn gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^{1/a}
        let u: f64 = rng.gen::<f64>().max(1e-300);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Label-skew statistic: mean over clients of the total-variation distance
/// between the client's label distribution and the global one. 0 = IID.
pub fn label_skew(shards: &[Dataset], global: &Dataset) -> f64 {
    let g_counts = global.class_counts();
    let g_total = global.len() as f64;
    let g_dist: Vec<f64> = g_counts.iter().map(|&c| c as f64 / g_total).collect();
    let mut acc = 0.0;
    for shard in shards {
        let counts = shard.class_counts();
        let total = shard.len().max(1) as f64;
        let tv: f64 =
            counts.iter().zip(&g_dist).map(|(&c, &g)| (c as f64 / total - g).abs()).sum::<f64>()
                / 2.0;
        acc += tv;
    }
    acc / shards.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn dataset(n: usize, classes: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f32]).collect(),
            (0..n).map(|i| i % classes).collect(),
            classes,
        )
    }

    #[test]
    fn dirichlet_conserves_samples() {
        let ds = dataset(500, 10);
        let mut rng = StdRng::seed_from_u64(1);
        for clients in [2usize, 10, 50] {
            let shards = dirichlet_partition(&ds, clients, 0.5, &mut rng);
            assert_eq!(shards.len(), clients);
            assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 500);
            assert!(shards.iter().all(|s| !s.is_empty()), "no empty shard");
        }
    }

    #[test]
    fn all_indices_assigned_exactly_once() {
        let ds = dataset(200, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let shards = dirichlet_partition(&ds, 7, 0.3, &mut rng);
        let mut seen: Vec<f32> =
            shards.iter().flat_map(|s| s.features().iter().map(|f| f[0])).collect();
        seen.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..200).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn smaller_alpha_is_more_skewed() {
        let ds = dataset(2000, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let skew_at = |alpha: f64, rng: &mut StdRng| {
            let shards = dirichlet_partition(&ds, 10, alpha, rng);
            label_skew(&shards, &ds)
        };
        // Average over a few draws for stability.
        let low: f64 = (0..5).map(|_| skew_at(0.1, &mut rng)).sum::<f64>() / 5.0;
        let high: f64 = (0..5).map(|_| skew_at(10.0, &mut rng)).sum::<f64>() / 5.0;
        assert!(low > high + 0.1, "alpha=0.1 skew {low} should exceed alpha=10 skew {high}");
    }

    #[test]
    fn iid_partition_is_balanced() {
        let ds = dataset(103, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let shards = iid_partition(&ds, 10, &mut rng);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 103);
        for s in &shards {
            assert!((10..=11).contains(&s.len()));
        }
    }

    #[test]
    fn iid_has_low_skew() {
        let ds = dataset(2000, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let shards = iid_partition(&ds, 10, &mut rng);
        assert!(label_skew(&shards, &ds) < 0.1);
    }

    #[test]
    fn dirichlet_proportions_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(6);
        for alpha in [0.1, 0.5, 1.0, 10.0] {
            let p = dirichlet(20, alpha, &mut rng);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_is_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        for shape in [0.5f64, 1.0, 3.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.07 * shape.max(1.0), "shape {shape} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "fewer samples")]
    fn too_many_clients_rejected() {
        let ds = dataset(5, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let _ = dirichlet_partition(&ds, 10, 0.5, &mut rng);
    }
}
