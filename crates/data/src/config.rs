//! Dataset generation configuration and entry points.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, TrainTest};
use crate::synth_har::{self, Activity};
use crate::synth_mnist::{self, GlyphJitter};

/// Which synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Synthetic MNIST: 10 classes, 784 features (28×28 digit glyphs).
    Mnist,
    /// Synthetic HAR: 6 classes, 561 inertial features.
    Har,
}

impl DatasetKind {
    /// Number of classes L.
    pub fn num_classes(self) -> usize {
        match self {
            DatasetKind::Mnist => synth_mnist::NUM_CLASSES,
            DatasetKind::Har => synth_har::NUM_CLASSES,
        }
    }

    /// Feature dimension f.
    pub fn feature_dim(self) -> usize {
        match self {
            DatasetKind::Mnist => synth_mnist::IMAGE_PIXELS,
            DatasetKind::Har => synth_har::FEATURE_DIM,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetKind::Mnist => write!(f, "MNIST (synthetic)"),
            DatasetKind::Har => write!(f, "HAR (synthetic)"),
        }
    }
}

/// Generation parameters for a synthetic dataset.
///
/// # Examples
///
/// ```
/// use rhychee_data::config::{DatasetKind, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let split = SyntheticConfig::small(DatasetKind::Har).generate(42)?;
/// assert_eq!(split.train.num_classes(), 6);
/// assert_eq!(split.train.feature_dim(), 561);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Which dataset family to generate.
    pub kind: DatasetKind,
    /// Training samples (balanced across classes).
    pub train_samples: usize,
    /// Test samples (balanced across classes).
    pub test_samples: usize,
}

/// Error from dataset generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError(String);

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataset generation failed: {}", self.0)
    }
}

impl std::error::Error for GenerateError {}

impl SyntheticConfig {
    /// A small config for unit tests and doctests (600 train / 200 test).
    pub fn small(kind: DatasetKind) -> Self {
        SyntheticConfig { kind, train_samples: 600, test_samples: 200 }
    }

    /// The paper-scale config used by the experiment harness
    /// (6,000 train / 1,500 test).
    pub fn paper(kind: DatasetKind) -> Self {
        SyntheticConfig { kind, train_samples: 6_000, test_samples: 1_500 }
    }

    /// Generates a deterministic train/test split from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError`] if either sample count is smaller than
    /// the class count (the split must contain every class).
    pub fn generate(&self, seed: u64) -> Result<TrainTest, GenerateError> {
        let classes = self.kind.num_classes();
        if self.train_samples < classes || self.test_samples < classes {
            return Err(GenerateError(format!(
                "need at least {classes} samples per split, got {}/{}",
                self.train_samples, self.test_samples
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = self.generate_split(self.train_samples, &mut rng);
        let mut test = self.generate_split(self.test_samples, &mut rng);
        if self.kind == DatasetKind::Har {
            // The UCI HAR release ships features normalized to [-1, 1];
            // mirror that by z-scoring on training statistics (test uses
            // the same transform, as a deployed system would).
            let stats = FeatureStats::fit(&train);
            stats.apply(&mut train);
            stats.apply(&mut test);
        }
        Ok(TrainTest { train, test })
    }

    fn generate_split<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let classes = self.kind.num_classes();
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % classes; // balanced
            let feat = match self.kind {
                DatasetKind::Mnist => {
                    synth_mnist::render_digit(label, &GlyphJitter::default(), rng)
                }
                DatasetKind::Har => {
                    let activity = Activity::all()[label];
                    synth_har::generate_sample(activity, rng)
                }
            };
            features.push(feat);
            labels.push(label);
        }
        Dataset::new(features, labels, classes)
    }
}

/// Per-feature standardization statistics fitted on a training split.
#[derive(Debug, Clone)]
pub struct FeatureStats {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl FeatureStats {
    /// Fits mean and standard deviation per feature.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit statistics on an empty dataset");
        let dim = data.feature_dim();
        let n = data.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for f in data.features() {
            for (m, &x) in mean.iter_mut().zip(f) {
                *m += x / n;
            }
        }
        let mut var = vec![0.0f32; dim];
        for f in data.features() {
            for ((v, &x), &m) in var.iter_mut().zip(f).zip(&mean) {
                *v += (x - m) * (x - m) / n;
            }
        }
        let inv_std = var.iter().map(|&v| 1.0 / v.sqrt().max(1e-6)).collect();
        FeatureStats { mean, inv_std }
    }

    /// Standardizes a dataset in place, clamping to ±5σ.
    pub fn apply(&self, data: &mut Dataset) {
        for f in data.features_mut() {
            for ((x, &m), &s) in f.iter_mut().zip(&self.mean).zip(&self.inv_std) {
                *x = ((*x - m) * s).clamp(-5.0, 5.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_generation_shapes() {
        let split = SyntheticConfig::small(DatasetKind::Mnist).generate(1).expect("generate");
        assert_eq!(split.train.len(), 600);
        assert_eq!(split.test.len(), 200);
        assert_eq!(split.train.feature_dim(), 784);
        assert_eq!(split.train.num_classes(), 10);
        // Balanced classes.
        assert!(split.train.class_counts().iter().all(|&c| c == 60));
    }

    #[test]
    fn har_generation_shapes() {
        let split = SyntheticConfig::small(DatasetKind::Har).generate(2).expect("generate");
        assert_eq!(split.train.feature_dim(), 561);
        assert_eq!(split.train.num_classes(), 6);
        assert_eq!(split.train.class_counts().iter().sum::<usize>(), 600);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::small(DatasetKind::Mnist);
        let a = cfg.generate(7).expect("generate");
        let b = cfg.generate(7).expect("generate");
        assert_eq!(a.train.features()[0], b.train.features()[0]);
        assert_eq!(a.test.features()[13], b.test.features()[13]);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig::small(DatasetKind::Har);
        let a = cfg.generate(1).expect("generate");
        let b = cfg.generate(2).expect("generate");
        assert_ne!(a.train.features()[0], b.train.features()[0]);
    }

    #[test]
    fn train_and_test_are_disjoint_draws() {
        let cfg = SyntheticConfig::small(DatasetKind::Mnist);
        let split = cfg.generate(3).expect("generate");
        // Same label, same position, but different random jitter.
        assert_ne!(split.train.features()[0], split.test.features()[0]);
    }

    #[test]
    fn undersized_config_rejected() {
        let cfg = SyntheticConfig { kind: DatasetKind::Mnist, train_samples: 5, test_samples: 200 };
        assert!(cfg.generate(1).is_err());
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(DatasetKind::Mnist.num_classes(), 10);
        assert_eq!(DatasetKind::Mnist.feature_dim(), 784);
        assert_eq!(DatasetKind::Har.num_classes(), 6);
        assert_eq!(DatasetKind::Har.feature_dim(), 561);
        assert!(DatasetKind::Mnist.to_string().contains("MNIST"));
    }
}
