//! Property-based tests for dataset generation and federated
//! partitioning.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use rhychee_data::dataset::Dataset;
use rhychee_data::partition::{dirichlet_partition, dirichlet_partition_indices, iid_partition};
use rhychee_data::synth_har::{generate_sample, Activity};
use rhychee_data::synth_mnist::{render_digit, GlyphJitter};

fn labelled_dataset(n: usize, classes: usize) -> Dataset {
    Dataset::new(
        (0..n).map(|i| vec![i as f32]).collect(),
        (0..n).map(|i| i % classes).collect(),
        classes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dirichlet_partition_conserves_and_covers(
        seed in any::<u64>(),
        n in 50usize..400,
        clients in 1usize..20,
        alpha in 0.05f64..20.0,
        classes in 2usize..8,
    ) {
        prop_assume!(n >= clients);
        let ds = labelled_dataset(n, classes);
        let mut rng = StdRng::seed_from_u64(seed);
        let shards = dirichlet_partition(&ds, clients, alpha, &mut rng);
        prop_assert_eq!(shards.len(), clients);
        prop_assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), n);
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
        // Every sample appears exactly once.
        let mut ids: Vec<i64> = shards
            .iter()
            .flat_map(|s| s.features().iter().map(|f| f[0] as i64))
            .collect();
        ids.sort_unstable();
        let expected: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(ids, expected);
    }

    #[test]
    fn index_partition_matches_dataset_partition_shapes(
        seed in any::<u64>(),
        n in 30usize..200,
        clients in 1usize..10,
    ) {
        prop_assume!(n >= clients);
        let ds = labelled_dataset(n, 4);
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let shards = dirichlet_partition(&ds, clients, 0.5, &mut rng1);
        let indices = dirichlet_partition_indices(ds.labels(), 4, clients, 0.5, &mut rng2);
        for (shard, idx) in shards.iter().zip(&indices) {
            prop_assert_eq!(shard.len(), idx.len());
        }
    }

    #[test]
    fn iid_partition_is_balanced(
        seed in any::<u64>(),
        n in 20usize..300,
        clients in 1usize..15,
    ) {
        prop_assume!(n >= clients);
        let ds = labelled_dataset(n, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let shards = iid_partition(&ds, clients, &mut rng);
        let min = shards.iter().map(Dataset::len).min().unwrap();
        let max = shards.iter().map(Dataset::len).max().unwrap();
        prop_assert!(max - min <= 1, "imbalance {min}..{max}");
    }

    #[test]
    fn digit_renders_are_valid_images(seed in any::<u64>(), digit in 0usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = render_digit(digit, &GlyphJitter::default(), &mut rng);
        prop_assert_eq!(img.len(), 784);
        prop_assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p) && p.is_finite()));
        let ink: f32 = img.iter().sum();
        prop_assert!(ink > 5.0 && ink < 600.0, "ink mass {ink}");
    }

    #[test]
    fn har_features_are_finite_and_dimensioned(seed in any::<u64>(), class in 0usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let features = generate_sample(Activity::all()[class], &mut rng);
        prop_assert_eq!(features.len(), 561);
        prop_assert!(features.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn subset_preserves_labels(
        n in 10usize..100,
        pick in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
    ) {
        let ds = labelled_dataset(n, 5);
        let indices: Vec<usize> = pick.iter().map(|i| i.index(n)).collect();
        let sub = ds.subset(&indices);
        for (k, &i) in indices.iter().enumerate() {
            prop_assert_eq!(sub.labels()[k], ds.labels()[i]);
        }
    }
}
