//! Experiment harness for the Rhychee-FL reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md §2 for the experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_comm_formulas`  | Table I — communication-size formulas |
//! | `table2_sota_comparison`| Table II — PFMLP / xMK-CKKS / Ours |
//! | `table3_param_sets`     | Table III — FHE parameter sets |
//! | `fig2_accuracy_sweep`   | Fig. 2 — accuracy vs D and client count |
//! | `fig3_convergence`      | Fig. 3 — accuracy by round, HDC vs CNN |
//! | `fig4_comm_overhead`    | Fig. 4 — model size vs communication |
//! | `fig5_channel`          | Fig. 5 — latency / rounds / time to failure |
//! | `noise_robustness`      | §V-E — convergence under channel noise |
//!
//! Criterion benches live in `benches/` and cover the latency-sensitive
//! primitives (FHE operations, HDC encoding/training, CRC throughput).
//!
//! This library crate carries the shared plumbing: an ASCII table
//! printer, human-unit formatting, and the telemetry export every
//! experiment binary routes through ([`init_telemetry`] /
//! [`emit_metrics_json`]).

use std::path::PathBuf;

use rhychee_telemetry as telemetry;

/// Every experiment binary links this crate, so declaring the tracking
/// allocator here puts all of `src/bin/` under heap accounting: spans
/// get allocation attribution and every `BENCH_*.json` can report the
/// process heap peak next to its timings.
#[global_allocator]
static TRACKING_ALLOC: telemetry::alloc::TrackingAlloc = telemetry::alloc::TrackingAlloc;

/// The memory headline embedded in `BENCH_*.json` documents:
/// `(heap_peak_bytes, rss_peak_bytes)` — the tracking allocator's
/// high-water mark and the process peak RSS (0 where procfs is
/// unavailable).
pub fn peak_memory() -> (u64, u64) {
    let heap_peak = telemetry::alloc::stats().peak_bytes;
    let rss_peak = telemetry::mem::sample_rss().map(|(_, peak)| peak).unwrap_or(0);
    (heap_peak, rss_peak)
}

/// A simple left-aligned ASCII table for experiment output.
///
/// # Examples
///
/// ```
/// use rhychee_bench::Table;
///
/// let mut t = Table::new(vec!["scheme", "bits"]);
/// t.row(vec!["CKKS-4".into(), "999424".into()]);
/// let s = t.render();
/// assert!(s.contains("CKKS-4"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for i in 0..cols {
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: String = widths.iter().map(|w| format!("|{}", "-".repeat(w + 2))).collect();
        out.push_str(&format!("{sep}|\n"));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a bit count with decimal-unit suffixes (Kb/Mb/Gb, base 1000 as
/// is conventional for link capacities).
pub fn format_bits(bits: u64) -> String {
    let b = bits as f64;
    if b >= 1e9 {
        format!("{:.2} Gb", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} Mb", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} Kb", b / 1e3)
    } else {
        format!("{bits} b")
    }
}

/// Formats a duration in adaptive units.
pub fn format_seconds(s: f64) -> String {
    if s >= 86_400.0 {
        format!("{:.1} days", s / 86_400.0)
    } else if s >= 3_600.0 {
        format!("{:.1} h", s / 3_600.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

/// Prints a section banner for experiment output.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("\n{line}\n| {title} |\n{line}");
}

/// Turns on telemetry recording. Every experiment binary calls this
/// first so its run produces a trace.
pub fn init_telemetry() {
    telemetry::set_enabled(true);
}

/// Directory where experiment metric traces land: `$RHYCHEE_METRICS_DIR`
/// if set, else `target/metrics`.
pub fn metrics_dir() -> PathBuf {
    std::env::var_os("RHYCHEE_METRICS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/metrics"))
}

/// Drains the trace buffer and metrics registry into
/// `metrics_dir()/<experiment>.jsonl` and prints the human-readable
/// summary table. Every experiment binary calls this last.
///
/// Export failures (e.g. an unwritable metrics directory) are reported on
/// stderr but never fail the experiment itself.
pub fn emit_metrics_json(experiment: &str) {
    let path = metrics_dir().join(format!("{experiment}.jsonl"));
    let summary = telemetry::trace::summary_table(&telemetry::metrics::global().snapshot());
    if !summary.is_empty() {
        banner(&format!("telemetry: {experiment}"));
        print!("{summary}");
    }
    match telemetry::trace::export_jsonl(&path) {
        Ok(()) => println!("telemetry trace written to {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-cell".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(s.contains("longer-cell"));
        assert!(s.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(format_bits(999), "999 b");
        assert_eq!(format_bits(5_000_000), "5.00 Mb");
        assert_eq!(format_bits(2_500_000_000), "2.50 Gb");
        assert_eq!(format_seconds(0.000_002), "2.00 µs");
        assert_eq!(format_seconds(0.25), "250.00 ms");
        assert_eq!(format_seconds(5.5), "5.50 s");
        assert_eq!(format_seconds(2.0 * 86_400.0), "2.0 days");
    }
}
