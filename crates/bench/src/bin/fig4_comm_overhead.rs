//! Regenerates **Fig. 4**: per-round communication overhead as a function
//! of model size for every FHE parameter set, comparing the HDC model
//! (D = 2000, 20,000 parameters) with the CNN baseline (43,484
//! parameters).
//!
//! Paper claims validated here:
//! * HDC is up to **2.2×** smaller than CNN (CKKS-4: 5 vs 11 ciphertexts);
//! * CKKS-4 beats TFHE-1 by **21.4×** at the HDC operating point;
//! * dropping CKKS-3 → CKKS-4 saves **39%**.

use rhychee_bench::{banner, format_bits, Table};
use rhychee_fhe::params::ParamSet;

/// The model-size sweep for the figure's x-axis, plus the two operating
/// points the paper highlights.
const MODEL_SIZES: [u64; 10] =
    [500, 1_000, 2_000, 4_000, 8_000, 16_000, 20_000, 32_000, 43_484, 64_000];

/// HDC with D = 2000, L = 10.
const HDC_PARAMS: u64 = 20_000;
/// The 2-conv/2-FC CNN baseline.
const CNN_PARAMS: u64 = 43_484;

fn main() {
    rhychee_bench::init_telemetry();
    banner("Fig. 4a: Communication size vs model size (bits per upload)");
    let sets = ParamSet::table3();
    let mut header: Vec<String> = vec!["params".into()];
    header.extend(sets.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(header);
    for &size in &MODEL_SIZES {
        let mut row = vec![size.to_string()];
        for (_, set) in &sets {
            row.push(set.comm_bits(size).to_string());
        }
        table.row(row);
    }
    table.print();

    banner("Fig. 4b: The HDC vs CNN operating points");
    let mut points = Table::new(vec!["Set", "HDC (20,000)", "CNN (43,484)", "CNN/HDC"]);
    for (name, set) in &sets {
        let hdc = set.comm_bits(HDC_PARAMS);
        let cnn = set.comm_bits(CNN_PARAMS);
        points.row(vec![
            name.to_string(),
            format_bits(hdc),
            format_bits(cnn),
            format!("{:.2}x", cnn as f64 / hdc as f64),
        ]);
    }
    points.print();

    banner("Paper claims (shape checks)");
    let ckks3 = &sets[2].1;
    let ckks4 = &sets[3].1;
    let tfhe1 = &sets[4].1;
    let ratio_cnn = ckks4.comm_bits(CNN_PARAMS) as f64 / ckks4.comm_bits(HDC_PARAMS) as f64;
    println!("HDC vs CNN at CKKS-4:      {ratio_cnn:.2}x smaller   (paper: 2.2x)");
    let ratio_tfhe = tfhe1.comm_bits(HDC_PARAMS) as f64 / ckks4.comm_bits(HDC_PARAMS) as f64;
    println!("CKKS-4 vs TFHE-1 (HDC):    {ratio_tfhe:.1}x smaller   (paper: 21.4x)");
    let reduction = 1.0 - ckks4.comm_bits(HDC_PARAMS) as f64 / ckks3.comm_bits(HDC_PARAMS) as f64;
    println!("CKKS-3 -> CKKS-4 saving:   {:.0}%            (paper: 39%)", reduction * 100.0);

    // TFHE advantage at small model sizes (paper Fig. 4b discussion).
    banner("Small-model crossover (TFHE wins below one CKKS ciphertext)");
    let mut cross = Table::new(vec!["params", "CKKS-4 bits", "TFHE-3 bits", "winner"]);
    let tfhe3 = &sets[6].1;
    for size in [64u64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let c = ckks4.comm_bits(size);
        let t = tfhe3.comm_bits(size);
        cross.row(vec![
            size.to_string(),
            c.to_string(),
            t.to_string(),
            if t < c { "TFHE".into() } else { "CKKS".into() },
        ]);
    }
    cross.print();
    rhychee_bench::emit_metrics_json("fig4_comm_overhead");
}
