//! Regenerates **Fig. 3**: global-model accuracy by aggregation round on
//! the MNIST workload — Rhychee-FL's HDC model (D = 2000) against the
//! 2-conv/2-FC CNN FedAvg baseline, for 10/50/100 clients, marking when
//! each first reaches 90%.
//!
//! Paper shape: HDC reaches 90% within 5 rounds at every client count;
//! the CNN takes several times longer (6× at 100 clients).
//!
//! Runtime: minutes on one core (CNN training dominates). `--quick`
//! reduces the sweep to 10 clients and fewer rounds.

use rhychee_bench::{banner, Table};
use rhychee_core::{FlConfig, Framework, NnFederation, NnModelKind, SgdConfig};
use rhychee_data::{DatasetKind, SyntheticConfig};

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (client_counts, rounds, samples): (&[usize], usize, usize) =
        if quick { (&[10], 6, 1_000) } else { (&[10, 50, 100], 12, 3_000) };

    let data = SyntheticConfig {
        kind: DatasetKind::Mnist,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(42)
    .expect("dataset generation");

    let mut summary = Table::new(vec![
        "clients",
        "HDC rounds to 90%",
        "CNN rounds to 90%",
        "speedup",
        "HDC final",
        "CNN final",
    ]);

    for &clients in client_counts {
        banner(&format!("Fig. 3: accuracy by round — {clients} clients (MNIST)"));
        let config = FlConfig::builder()
            .clients(clients)
            .rounds(rounds)
            .hd_dim(2000)
            .seed(9)
            .build()
            .expect("valid config");

        let mut hdc = Framework::hdc_plaintext(config.clone(), &data).expect("framework");
        let hdc_report = hdc.run().expect("hdc run");

        let mut cnn_config = config.clone();
        cnn_config.local_epochs = 2;
        let sgd = SgdConfig { lr: 0.05, momentum: 0.9, batch_size: 32 };
        let mut cnn = NnFederation::new(&cnn_config, &data, NnModelKind::Cnn, sgd).expect("cnn");
        let cnn_report = cnn.run().expect("cnn run");

        let mut table = Table::new(vec!["round", "HDC (D=2000)", "CNN"]);
        for r in 0..rounds {
            table.row(vec![
                (r + 1).to_string(),
                format!("{:.4}", hdc_report.rounds[r].accuracy),
                format!("{:.4}", cnn_report.rounds[r].accuracy),
            ]);
        }
        table.print();

        let hdc_90 = hdc_report.rounds_to_accuracy(0.90);
        let cnn_90 = cnn_report.rounds_to_accuracy(0.90);
        let fmt = |x: Option<usize>| x.map_or(format!("> {rounds}"), |r| r.to_string());
        let speedup = match (hdc_90, cnn_90) {
            (Some(h), Some(c)) => format!("{:.1}x", c as f64 / h as f64),
            (Some(h), None) => format!("> {:.1}x", rounds as f64 / h as f64),
            _ => "-".into(),
        };
        summary.row(vec![
            clients.to_string(),
            fmt(hdc_90),
            fmt(cnn_90),
            speedup,
            format!("{:.4}", hdc_report.final_accuracy),
            format!("{:.4}", cnn_report.final_accuracy),
        ]);
    }

    banner("Fig. 3 summary: rounds until 90% accuracy");
    summary.print();
    println!(
        "\nPaper shape: HDC reaches 90% within 5 rounds at every client count\n\
         and converges several times faster than the CNN (6x at 100 clients)."
    );
    rhychee_bench::emit_metrics_json("fig3_convergence");
}
