//! Regenerates **Fig. 5**: communication overhead with CRC error
//! detection and retransmissions (MNIST workload, 10 clients, BER 1e-3,
//! 1400-bit packets, 32-bit CRC).
//!
//! * Fig. 5a — per-round communication latency;
//! * Fig. 5b — expected number of aggregation rounds until the first
//!   undetected error;
//! * Fig. 5c — expected time to the first error.
//!
//! Paper claims validated: HDC (D = 2000) has ~54% lower round latency
//! than the CNN at CKKS-4, and survives 2.2× more rounds/time
//! (≈ weeks-scale: 37 days vs 17 days in the paper's setup).

use rhychee_bench::{banner, format_seconds, Table};
use rhychee_channel::failure::{seconds_to_days, ChannelModel};
use rhychee_fhe::params::ParamSet;

const CLIENTS: usize = 10;
const HDC_PARAMS: u64 = 20_000;
const CNN_PARAMS: u64 = 43_484;
/// Fixed per-round wall-clock period (local training + scheduling);
/// ≈75 s reproduces the paper's Fig. 5c absolute numbers.
const ROUND_PERIOD: f64 = 75.0;

fn main() {
    rhychee_bench::init_telemetry();
    let model = ChannelModel::default();
    banner("Channel setup");
    println!("BER = {}, packet = {} bits, detector = CRC-32", model.ber, model.packet_bits);
    println!(
        "P_re = {:.4e}, P_ue = {:.4e}, E[T] = {:.4e} (paper: 2.328e-10 / 3.039e9)",
        model.detector.undetected_probability(),
        model.undetected_error_probability(),
        model.expected_transmissions_to_failure()
    );
    println!(
        "packet error prob = {:.4} (exact), retransmission factor N_re = {:.3}",
        model.packet_error_probability(),
        model.expected_transmissions_per_packet()
    );

    let sets = ParamSet::table3();

    banner("Fig. 5a: Per-round communication latency (10 clients)");
    let mut lat = Table::new(vec!["Set", "HDC (D=2000)", "CNN", "HDC saving"]);
    for (name, set) in &sets {
        let hdc = model.round_latency(CLIENTS, set.comm_bits(HDC_PARAMS));
        let cnn = model.round_latency(CLIENTS, set.comm_bits(CNN_PARAMS));
        lat.row(vec![
            name.to_string(),
            format_seconds(hdc),
            format_seconds(cnn),
            format!("{:.0}%", (1.0 - hdc / cnn) * 100.0),
        ]);
    }
    lat.print();

    banner("Fig. 5b: Expected rounds to first undetected error");
    let mut rounds = Table::new(vec!["Set", "HDC E[R]", "CNN E[R]", "HDC/CNN"]);
    for (name, set) in &sets {
        let hdc = model.expected_rounds_to_failure(CLIENTS, set.comm_bits(HDC_PARAMS));
        let cnn = model.expected_rounds_to_failure(CLIENTS, set.comm_bits(CNN_PARAMS));
        rounds.row(vec![
            name.to_string(),
            format!("{hdc:.0}"),
            format!("{cnn:.0}"),
            format!("{:.2}x", hdc / cnn),
        ]);
    }
    rounds.print();

    banner("Fig. 5c: Expected time to first error (fixed 75 s round period)");
    let mut ttf = Table::new(vec!["Set", "HDC", "CNN", "HDC/CNN"]);
    for (name, set) in &sets {
        let hdc = model.expected_time_to_failure_fixed_period(
            CLIENTS,
            set.comm_bits(HDC_PARAMS),
            ROUND_PERIOD,
        );
        let cnn = model.expected_time_to_failure_fixed_period(
            CLIENTS,
            set.comm_bits(CNN_PARAMS),
            ROUND_PERIOD,
        );
        ttf.row(vec![
            name.to_string(),
            format!("{:.1} days", seconds_to_days(hdc)),
            format!("{:.1} days", seconds_to_days(cnn)),
            format!("{:.2}x", hdc / cnn),
        ]);
    }
    ttf.print();
    println!(
        "(Rounds run on a fixed schedule; with purely communication-bound rounds\n\
         the payload cancels and every model fails at the same wall-clock time.)"
    );

    banner("Extension: BER sensitivity at the HDC/CKKS-4 point");
    let ckks4_bits = sets[3].1.comm_bits(HDC_PARAMS);
    let mut ber_table = Table::new(vec!["BER", "N_re", "round latency", "E[R]", "time to failure"]);
    for ber in [1e-5f64, 1e-4, 5e-4, 1e-3, 2e-3] {
        let m = ChannelModel { ber, ..ChannelModel::default() };
        ber_table.row(vec![
            format!("{ber:.0e}"),
            format!("{:.2}", m.expected_transmissions_per_packet()),
            format_seconds(m.round_latency(CLIENTS, ckks4_bits)),
            format!("{:.0}", m.expected_rounds_to_failure(CLIENTS, ckks4_bits)),
            format!(
                "{:.1} days",
                seconds_to_days(m.expected_time_to_failure_fixed_period(
                    CLIENTS,
                    ckks4_bits,
                    ROUND_PERIOD
                ))
            ),
        ]);
    }
    ber_table.print();

    banner("Paper claims (shape checks, CKKS-4)");
    let ckks4 = &sets[3].1;
    let hdc_lat = model.round_latency(CLIENTS, ckks4.comm_bits(HDC_PARAMS));
    let cnn_lat = model.round_latency(CLIENTS, ckks4.comm_bits(CNN_PARAMS));
    println!(
        "Round-latency saving HDC vs CNN: {:.0}%   (paper: 54%)",
        (1.0 - hdc_lat / cnn_lat) * 100.0
    );
    let hdc_days = seconds_to_days(model.expected_time_to_failure_fixed_period(
        CLIENTS,
        ckks4.comm_bits(HDC_PARAMS),
        ROUND_PERIOD,
    ));
    let cnn_days = seconds_to_days(model.expected_time_to_failure_fixed_period(
        CLIENTS,
        ckks4.comm_bits(CNN_PARAMS),
        ROUND_PERIOD,
    ));
    println!(
        "Time to first error: HDC {hdc_days:.0} days vs CNN {cnn_days:.0} days, ratio {:.2}x \
         (paper: 37 vs 17 days, 2.2x)",
        hdc_days / cnn_days
    );
    println!(
        "Conclusion: with E[R] ~ tens of thousands of rounds and convergence in\n\
         <= 5 rounds (Fig. 3), the global model converges long before channel\n\
         noise can interrupt training."
    );
    rhychee_bench::emit_metrics_json("fig5_channel");
}
