//! Ablation for the paper's §V-D precision claim: *"We tested lowering
//! the ciphertext modulus Q as low as 61 bits does not degrade the
//! global model accuracy."*
//!
//! Runs the same encrypted federation through all four CKKS parameter
//! sets (scale factors from 2^40 down to 2^26) plus the plaintext
//! reference, and reports final accuracy and the per-round encrypt /
//! aggregate / decrypt costs.
//!
//! Expected shape: accuracy is flat across parameter sets (HDC absorbs
//! CKKS quantization noise), while CKKS-4 minimizes both bits and time.

use rhychee_bench::{banner, format_bits, format_seconds, Table};
use rhychee_core::{FlConfig, Framework};
use rhychee_data::{DatasetKind, SyntheticConfig};
use rhychee_fhe::params::CkksParams;

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, rounds, hd_dim) = if quick { (600, 3, 512) } else { (1_500, 5, 2_000) };

    let data = SyntheticConfig {
        kind: DatasetKind::Mnist,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(51)
    .expect("dataset generation");
    let config = || {
        FlConfig::builder()
            .clients(5)
            .rounds(rounds)
            .hd_dim(hd_dim)
            .seed(19)
            .build()
            .expect("valid config")
    };

    banner("Ablation: CKKS scale factor / ciphertext modulus vs accuracy (S V-D)");
    let mut table = Table::new(vec![
        "pipeline",
        "log Q",
        "scale",
        "final acc",
        "bits/upload",
        "enc+agg+dec per round",
    ]);

    let mut plain = Framework::hdc_plaintext(config(), &data).expect("build");
    let plain_report = plain.run().expect("run");
    table.row(vec![
        "plaintext".into(),
        "-".into(),
        "-".into(),
        format!("{:.4}", plain_report.final_accuracy),
        format!("{}", plain.num_parameters() * 32),
        "-".into(),
    ]);

    let sets = [
        ("CKKS-1", CkksParams::ckks1()),
        ("CKKS-2", CkksParams::ckks2()),
        ("CKKS-3", CkksParams::ckks3()),
        ("CKKS-4", CkksParams::ckks4()),
    ];
    let mut accs = Vec::new();
    for (name, params) in sets {
        let log_q = params.log_q();
        let scale = format!("2^{}", params.scale_bits);
        let mut fed = Framework::hdc_encrypted(config(), &data, params).expect("build");
        let report = fed.run().expect("run");
        let last = report.rounds.last().expect("rounds");
        let crypto_time = last.encrypt_time + last.aggregate_time + last.decrypt_time;
        accs.push(report.final_accuracy);
        table.row(vec![
            name.into(),
            log_q.to_string(),
            scale,
            format!("{:.4}", report.final_accuracy),
            format_bits(fed.upload_bits_per_round()),
            format_seconds(crypto_time.as_secs_f64()),
        ]);
        eprintln!("  [{name}] done: acc {:.4}", report.final_accuracy);
    }
    table.print();

    let spread = accs.iter().cloned().fold(f64::MIN, f64::max)
        - accs.iter().cloned().fold(f64::MAX, f64::min);
    let vs_plain =
        (plain_report.final_accuracy - accs.iter().cloned().fold(f64::MAX, f64::min)).abs();
    println!(
        "\naccuracy spread across CKKS sets: {spread:.4}; worst gap to plaintext: {vs_plain:.4}"
    );
    println!(
        "paper claim: lowering Q to 61 bits (scale 2^26) does not degrade accuracy\n\
         while cutting communication by 39% vs CKKS-3."
    );
    rhychee_bench::emit_metrics_json("ablation_scale_factor");
}
