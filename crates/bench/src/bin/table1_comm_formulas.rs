//! Regenerates **Table I**: per-round communication size per scheme.
//!
//! The paper states the symbolic formulas; this binary evaluates them on
//! the experimental operating point (HDC D = 2000, L = 10 → DL = 20,000
//! trainable parameters) across all seven Table III parameter sets, and
//! checks the closed forms against actually serialized ciphertexts.

use rand::{rngs::StdRng, SeedableRng};
use rhychee_bench::{banner, format_bits, Table};
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::lwe::LweContext;
use rhychee_fhe::params::ParamSet;

fn main() {
    rhychee_bench::init_telemetry();
    banner("Table I: Design Space and Communication Size");
    println!("Model size DL = 2000 x 10 = 20,000 trainable parameters\n");

    let dl: u64 = 20_000;
    let mut table =
        Table::new(vec!["Set", "Scheme", "Formula", "Ciphertexts", "Size (bits)", "Size"]);
    for (name, set) in ParamSet::table3() {
        let (scheme, formula, cts) = match &set {
            ParamSet::Ckks(p) => (
                "CKKS",
                format!(
                    "ceil(DL/(N/2)) * 2N log Q = ceil({dl}/{}) * 2*{}*{}",
                    p.slot_count(),
                    p.n,
                    p.log_q()
                ),
                dl.div_ceil(p.slot_count() as u64),
            ),
            ParamSet::Tfhe(p) => {
                ("TFHE", format!("DL (n+1) log q = {dl} * {} * {}", p.dimension + 1, p.log_q), dl)
            }
        };
        let bits = set.comm_bits(dl);
        table.row(vec![
            name.to_string(),
            scheme.to_string(),
            formula,
            cts.to_string(),
            bits.to_string(),
            format_bits(bits),
        ]);
    }
    table.print();

    // Cross-check the formulas against real serialized ciphertext sizes
    // (bit-packed wire format; header overhead is 72 bits per ciphertext).
    banner("Formula vs. serialized wire size (validation)");
    let mut check = Table::new(vec!["Set", "Formula bits/ct", "Serialized bits/ct", "Overhead"]);
    let mut rng = StdRng::seed_from_u64(1);
    for (name, set) in ParamSet::table3() {
        match set {
            ParamSet::Ckks(p) => {
                let formula = p.ciphertext_bits();
                let ctx = CkksContext::new(p).expect("params");
                let (_, pk) = ctx.generate_keys(&mut rng);
                let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
                let actual = (ctx.serialize(&ct).len() * 8) as u64;
                check.row(vec![
                    name.to_string(),
                    formula.to_string(),
                    actual.to_string(),
                    format!("{:+.3}%", 100.0 * (actual as f64 - formula as f64) / formula as f64),
                ]);
            }
            ParamSet::Tfhe(p) => {
                let formula = p.ciphertext_bits();
                let ctx = LweContext::new(p).expect("params");
                let sk = ctx.generate_key(&mut rng);
                let ct = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
                let actual = (ctx.serialize(&ct).len() * 8) as u64;
                check.row(vec![
                    name.to_string(),
                    formula.to_string(),
                    actual.to_string(),
                    format!("{:+.3}%", 100.0 * (actual as f64 - formula as f64) / formula as f64),
                ]);
            }
        }
    }
    check.print();
    rhychee_bench::emit_metrics_json("table1_comm_formulas");
}
