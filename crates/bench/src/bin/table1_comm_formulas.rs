//! Regenerates **Table I**: per-round communication size per scheme.
//!
//! The paper states the symbolic formulas; this binary evaluates them on
//! the experimental operating point (HDC D = 2000, L = 10 → DL = 20,000
//! trainable parameters) across all seven Table III parameter sets, and
//! checks the closed forms against actually serialized ciphertexts.

use rand::{rngs::StdRng, SeedableRng};
use rhychee_bench::{banner, format_bits, Table};
use rhychee_core::packing::{self, PackingConfig};
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::lwe::LweContext;
use rhychee_fhe::params::ParamSet;

fn main() {
    rhychee_bench::init_telemetry();
    banner("Table I: Design Space and Communication Size");
    println!("Model size DL = 2000 x 10 = 20,000 trainable parameters\n");

    let dl: u64 = 20_000;
    let mut table =
        Table::new(vec!["Set", "Scheme", "Formula", "Ciphertexts", "Size (bits)", "Size"]);
    for (name, set) in ParamSet::table3() {
        let (scheme, formula, cts) = match &set {
            ParamSet::Ckks(p) => (
                "CKKS",
                format!(
                    "ceil(DL/(N/2)) * 2N log Q = ceil({dl}/{}) * 2*{}*{}",
                    p.slot_count(),
                    p.n,
                    p.log_q()
                ),
                dl.div_ceil(p.slot_count() as u64),
            ),
            ParamSet::Tfhe(p) => {
                ("TFHE", format!("DL (n+1) log q = {dl} * {} * {}", p.dimension + 1, p.log_q), dl)
            }
        };
        let bits = set.comm_bits(dl);
        table.row(vec![
            name.to_string(),
            scheme.to_string(),
            formula,
            cts.to_string(),
            bits.to_string(),
            format_bits(bits),
        ]);
    }
    table.print();

    // Cross-check the formulas against real serialized ciphertext sizes
    // (bit-packed wire format; header overhead is 72 bits per ciphertext).
    banner("Formula vs. serialized wire size (validation)");
    let mut check = Table::new(vec!["Set", "Formula bits/ct", "Serialized bits/ct", "Overhead"]);
    let mut rng = StdRng::seed_from_u64(1);
    for (name, set) in ParamSet::table3() {
        match set {
            ParamSet::Ckks(p) => {
                let formula = p.ciphertext_bits();
                let ctx = CkksContext::new(p).expect("params");
                let (_, pk) = ctx.generate_keys(&mut rng);
                let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
                let actual = (ctx.serialize(&ct).len() * 8) as u64;
                check.row(vec![
                    name.to_string(),
                    formula.to_string(),
                    actual.to_string(),
                    format!("{:+.3}%", 100.0 * (actual as f64 - formula as f64) / formula as f64),
                ]);
            }
            ParamSet::Tfhe(p) => {
                let formula = p.ciphertext_bits();
                let ctx = LweContext::new(p).expect("params");
                let sk = ctx.generate_key(&mut rng);
                let ct = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
                let actual = (ctx.serialize(&ct).len() * 8) as u64;
                check.row(vec![
                    name.to_string(),
                    formula.to_string(),
                    actual.to_string(),
                    format!("{:+.3}%", 100.0 * (actual as f64 - formula as f64) / formula as f64),
                ]);
            }
        }
    }
    check.print();

    // Bit-interleaved packing at the same operating point: quantized
    // coordinates share slots (lane = bits + ceil(log2 P) for carry-free
    // sums across P clients, plus one counter lane), so the per-upload
    // ciphertext count — and every byte formula above — scales down by
    // the packing density. The analytical model is cross-checked against
    // actually serialized uploads; the same reconciliation is asserted in
    // `rhychee-core`'s packing tests.
    banner("Bit-interleaved packing (bits = 10, P = 4 clients) vs dense slots");
    let dense = PackingConfig::dense();
    let inter = PackingConfig::interleaved(10, 1.0, 4);
    let mut packed = Table::new(vec![
        "Set",
        "cts dense",
        "cts packed",
        "bytes dense",
        "bytes packed (analytical)",
        "bytes packed (serialized)",
        "ratio",
    ]);
    for (name, set) in ParamSet::table3() {
        let ParamSet::Ckks(p) = set else { continue };
        let ctx = CkksContext::new(p).expect("params");
        let slots = ctx.slot_count();
        let dense_cts = packing::ciphertexts_needed_with(&dense, dl as usize, slots);
        let packed_cts = packing::ciphertexts_needed_with(&inter, dl as usize, slots);
        let dense_bytes = packing::upload_bytes_canonical_with(&ctx, &dense, dl as usize);
        let packed_bytes = packing::upload_bytes_canonical_with(&ctx, &inter, dl as usize);
        let (_, pk) = ctx.generate_keys(&mut rng);
        let flat: Vec<f32> = (0..dl as usize).map(|i| ((i % 97) as f32 / 97.0) - 0.5).collect();
        let cts = packing::encrypt_model_with(&ctx, &pk, &flat, &inter, &mut rng).expect("encrypt");
        let serialized: usize = cts.iter().map(|ct| ctx.serialize(ct).len()).sum();
        assert_eq!(
            serialized, packed_bytes,
            "{name}: serialized interleaved upload diverged from the analytical model"
        );
        packed.row(vec![
            name.to_string(),
            dense_cts.to_string(),
            packed_cts.to_string(),
            dense_bytes.to_string(),
            packed_bytes.to_string(),
            serialized.to_string(),
            format!("{:.2}x", dense_bytes as f64 / packed_bytes as f64),
        ]);
    }
    packed.print();
    rhychee_bench::emit_metrics_json("table1_comm_formulas");
}
