//! Regenerates **Table III**: the seven FHE parameter sets, with the
//! materialized prime chains and per-ciphertext capacities this
//! implementation derives from them.

use rhychee_bench::{banner, Table};
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::params::ParamSet;

fn main() {
    rhychee_bench::init_telemetry();
    banner("Table III: FHE Parameter Sets");
    let mut table =
        Table::new(vec!["Set", "Scheme", "N (n)", "log Q (log q)", "Slots", "Bits/ciphertext"]);
    for (name, set) in ParamSet::table3() {
        match set {
            ParamSet::Ckks(p) => {
                table.row(vec![
                    name.to_string(),
                    "CKKS".to_string(),
                    p.n.to_string(),
                    p.log_q().to_string(),
                    p.slot_count().to_string(),
                    p.ciphertext_bits().to_string(),
                ]);
            }
            ParamSet::Tfhe(p) => {
                table.row(vec![
                    name.to_string(),
                    "TFHE".to_string(),
                    p.dimension.to_string(),
                    p.log_q.to_string(),
                    "1".to_string(),
                    p.ciphertext_bits().to_string(),
                ]);
            }
        }
    }
    table.print();

    banner("Materialized CKKS prime chains (q_i = 1 mod 2N, largest-first)");
    let mut chains = Table::new(vec!["Set", "Prime bits", "Primes", "Scale"]);
    for (name, set) in ParamSet::table3() {
        if let ParamSet::Ckks(p) = set {
            let scale = format!("2^{}", p.scale_bits);
            let bits = format!("{:?}", p.prime_bits);
            let ctx = CkksContext::new(p).expect("valid params");
            let primes =
                ctx.primes().iter().map(|q| format!("{q:#x}")).collect::<Vec<_>>().join(", ");
            chains.row(vec![name.to_string(), bits, primes, scale]);
        }
    }
    chains.print();
    println!(
        "\nAll sets meet the 128-bit security level per the\n\
         homomorphicencryption.org tables for their (N, log Q) / (n, log q)\n\
         combinations (parameter-faithful; see DESIGN.md security note)."
    );
    rhychee_bench::emit_metrics_json("table3_param_sets");
}
