//! Regenerates **Fig. 2**: final global-model accuracy as a function of
//! hypervector dimension D and client count, for the HAR and MNIST
//! workloads (plaintext aggregation, Dirichlet non-IID, α = 0.5 — the
//! paper's Fig. 2 is run on non-encrypted data).
//!
//! Paper shape: accuracy ≥ 95% (MNIST) / ≥ 92% (HAR) for every D, with no
//! significant degradation at smaller D or larger client counts.
//!
//! Runtime: several minutes on one core (dominated by hypervector
//! encoding at D = 4000). Pass `--quick` for a reduced sweep.

use std::time::Instant;

use rhychee_bench::{banner, Table};
use rhychee_core::{FlConfig, Framework};
use rhychee_data::{DatasetKind, SyntheticConfig};

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (dims, client_counts, samples, rounds): (&[usize], &[usize], usize, usize) = if quick {
        (&[1000, 2000], &[10, 50], 1_500, 6)
    } else {
        (&[1000, 2000, 4000], &[10, 20, 50, 100], 4_000, 10)
    };

    for kind in [DatasetKind::Har, DatasetKind::Mnist] {
        banner(&format!("Fig. 2: Final global accuracy — {kind}"));
        let data = SyntheticConfig { kind, train_samples: samples, test_samples: samples / 4 }
            .generate(42)
            .expect("dataset generation");

        let mut header: Vec<String> = vec!["D \\ clients".into()];
        header.extend(client_counts.iter().map(|c| c.to_string()));
        let mut table = Table::new(header);
        let mut min_acc = 1.0f64;
        for &d in dims {
            let mut row = vec![d.to_string()];
            for &clients in client_counts {
                let t0 = Instant::now();
                let config = FlConfig::builder()
                    .clients(clients)
                    .rounds(rounds)
                    .hd_dim(d)
                    .seed(7)
                    .build()
                    .expect("valid config");
                let mut fw = Framework::hdc_plaintext(config, &data).expect("framework");
                let report = fw.run().expect("run");
                min_acc = min_acc.min(report.final_accuracy);
                row.push(format!("{:.4}", report.final_accuracy));
                eprintln!(
                    "  [{kind} D={d} P={clients}] acc {:.4} ({:.1?})",
                    report.final_accuracy,
                    t0.elapsed()
                );
            }
            table.row(row);
        }
        table.print();
        let target = if kind == DatasetKind::Mnist { 0.95 } else { 0.92 };
        println!(
            "min accuracy across the grid: {min_acc:.4} (paper threshold: >= {target})  {}",
            if min_acc >= target { "OK" } else { "below paper threshold" }
        );
    }

    println!(
        "\nTakeaway (paper §V-C): D <= 4000 suffices for both datasets, and\n\
         accuracy is stable across client counts — so the smallest D can be\n\
         chosen to minimize communication."
    );
    rhychee_bench::emit_metrics_json("fig2_accuracy_sweep");
}
