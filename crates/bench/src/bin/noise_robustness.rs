//! Regenerates the **§V-E robustness experiment**: end-to-end encrypted
//! federated learning where every ciphertext crosses a noisy 5G-style
//! channel (BER 1e-3, 1400-bit packets).
//!
//! Three conditions:
//! 1. clean channel (reference);
//! 2. noisy channel + CRC-32 detect-and-retransmit (the paper's setting);
//! 3. noisy channel, detection disabled (ablation showing why error
//!    detection is mandatory for FHE payloads).
//!
//! Paper shape: with CRC the model converges exactly as on a clean link
//! (E[T] ≈ 3e9 transmissions before an undetected error, while a full
//! run needs orders of magnitude fewer); without detection, corrupted
//! ciphertexts poison the homomorphic aggregate.

use rhychee_bench::{banner, Table};
use rhychee_channel::crc::Detector;
use rhychee_core::{FlConfig, NoisyChannelConfig, NoisyFederation};
use rhychee_data::{DatasetKind, SyntheticConfig};
use rhychee_fhe::params::CkksParams;

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    // CKKS-4 at D=2000 moves ~5 Mb per model copy; the bit-level channel
    // simulation is the bottleneck, so the default run uses a reduced
    // dimension, which preserves every qualitative effect.
    let (samples, rounds, hd_dim, clients) =
        if quick { (600, 3, 256, 3) } else { (1_500, 5, 1_000, 5) };

    let data = SyntheticConfig {
        kind: DatasetKind::Mnist,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(23)
    .expect("dataset generation");

    let config = FlConfig::builder()
        .clients(clients)
        .rounds(rounds)
        .hd_dim(hd_dim)
        .seed(31)
        .build()
        .expect("valid config");

    let conditions: [(&str, NoisyChannelConfig); 3] = [
        (
            "clean",
            NoisyChannelConfig { ber: 0.0, detector: Some(Detector::Crc32), ..Default::default() },
        ),
        ("BER 1e-3 + CRC-32", NoisyChannelConfig::default()),
        (
            "BER 2e-5, no detection",
            NoisyChannelConfig { ber: 2e-5, detector: None, ..Default::default() },
        ),
    ];

    let mut summary = Table::new(vec![
        "condition",
        "final acc",
        "acc by round",
        "packets",
        "retransmissions",
        "undetected",
    ]);

    for (name, channel) in conditions {
        banner(&format!("Condition: {name}"));
        let mut fed = NoisyFederation::new(config.clone(), &data, CkksParams::ckks4(), channel)
            .expect("federation");
        let (report, stats) = fed.run().expect("run");
        let curve: Vec<String> =
            report.rounds.iter().map(|r| format!("{:.3}", r.accuracy)).collect();
        println!(
            "accuracy by round: {}\npackets {} | transmissions {} | retransmissions {} | \
             undetected {} | dropped cts {}",
            curve.join(" -> "),
            stats.packets,
            stats.transmissions,
            stats.retransmissions,
            stats.undetected_errors,
            stats.dropped_ciphertexts,
        );
        summary.row(vec![
            name.to_string(),
            format!("{:.4}", report.final_accuracy),
            curve.join(" "),
            stats.packets.to_string(),
            stats.retransmissions.to_string(),
            stats.undetected_errors.to_string(),
        ]);
    }

    banner("Robustness summary (paper §V-E)");
    summary.print();
    println!(
        "\nWith CRC-32 the run converges before channel noise can interfere\n\
         (expected transmissions to an undetected error: ~3.07e9; this whole\n\
         run used orders of magnitude fewer). Without error detection even a\n\
         tiny BER corrupts ciphertexts and the homomorphic aggregate."
    );
    rhychee_bench::emit_metrics_json("noise_robustness");
}
