//! Client/server latency breakdown of one encrypted aggregation round —
//! the cost model behind the paper's "at least 4.5× faster client-side
//! latency" claim (Table II) and the design-space discussion of §IV-B.
//!
//! For each CKKS parameter set and for the LWE pipeline, reports wall
//! time spent in local training, model encryption (client), homomorphic
//! aggregation (server), and global-model decryption (client).

use rhychee_bench::{banner, format_bits, format_seconds, Table};
use rhychee_core::{FlConfig, Framework};
use rhychee_data::{DatasetKind, SyntheticConfig};
use rhychee_fhe::params::CkksParams;

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, hd_dim, clients) = if quick { (400, 512, 3) } else { (1_000, 2_000, 10) };

    let data = SyntheticConfig {
        kind: DatasetKind::Mnist,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(71)
    .expect("dataset generation");
    let config = || {
        FlConfig::builder()
            .clients(clients)
            .rounds(1)
            .hd_dim(hd_dim)
            .seed(37)
            .build()
            .expect("valid config")
    };

    banner(&format!(
        "Latency breakdown of one encrypted round ({clients} clients, D = {hd_dim}, MNIST)"
    ));
    let mut table = Table::new(vec![
        "pipeline",
        "bits/upload",
        "train (all clients)",
        "encrypt (all clients)",
        "aggregate (server)",
        "decrypt (1 client)",
    ]);

    let sets = [
        ("CKKS-1", CkksParams::ckks1()),
        ("CKKS-2", CkksParams::ckks2()),
        ("CKKS-3", CkksParams::ckks3()),
        ("CKKS-4", CkksParams::ckks4()),
    ];
    for (name, params) in sets {
        let mut fed = Framework::hdc_encrypted(config(), &data, params).expect("build");
        let round = fed.run_round().expect("round");
        table.row(vec![
            name.into(),
            format_bits(fed.upload_bits_per_round()),
            format_seconds(round.train_time.as_secs_f64()),
            format_seconds(round.encrypt_time.as_secs_f64()),
            format_seconds(round.aggregate_time.as_secs_f64()),
            format_seconds(round.decrypt_time.as_secs_f64()),
        ]);
        eprintln!("  [{name}] done");
    }

    // LWE pipeline at a reduced dimension (one ciphertext per parameter
    // makes the full D = 2000 point pointlessly slow — which is itself
    // the design-space conclusion of Table I/Fig. 4).
    let lwe_dim = 128;
    let mut lwe_cfg = config();
    lwe_cfg.hd_dim = lwe_dim;
    let params = Framework::lwe_fl_params(clients, 6);
    let mut fed = Framework::hdc_encrypted_lwe(lwe_cfg, &data, params, 6).expect("build");
    let round = fed.run_round().expect("round");
    table.row(vec![
        format!("TFHE/LWE (D = {lwe_dim})"),
        format_bits(fed.upload_bits_per_round()),
        format_seconds(round.train_time.as_secs_f64()),
        format_seconds(round.encrypt_time.as_secs_f64()),
        format_seconds(round.aggregate_time.as_secs_f64()),
        format_seconds(round.decrypt_time.as_secs_f64()),
    ]);
    table.print();

    println!(
        "\nReading: client-side cost (encrypt + decrypt) shrinks with the\n\
         ciphertext modulus — CKKS-4 is both the cheapest and the smallest —\n\
         and the SIMD-packed CKKS pipelines dwarf the per-parameter LWE path,\n\
         matching the paper's scheme-selection guidance (S IV-B2)."
    );
    rhychee_bench::emit_metrics_json("latency_breakdown");
}
