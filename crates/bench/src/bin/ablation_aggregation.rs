//! Ablation over the framework's design choices beyond the paper's
//! FedAvg default:
//!
//! * aggregation strategy — FedAvg vs FedProx vs FedNova (the paper
//!   names the latter two as future work; both are implemented for the
//!   plaintext pipeline);
//! * non-IID severity — Dirichlet α ∈ {0.1, 0.5, 100};
//! * pre-upload L2 normalization on/off;
//! * partial participation (20% of clients per round).
//!
//! Expected shape: HDC federated learning is remarkably insensitive —
//! the paper credits this to HDC's noise robustness (§V-C2).

use rhychee_bench::{banner, Table};
use rhychee_core::{Aggregation, FlConfig, Framework};
use rhychee_data::{DatasetKind, SyntheticConfig};

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, rounds, hd_dim, clients) =
        if quick { (800, 4, 512, 5) } else { (2_000, 8, 1_000, 10) };

    let data = SyntheticConfig {
        kind: DatasetKind::Har,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(61)
    .expect("dataset generation");

    let base = || FlConfig::builder().clients(clients).rounds(rounds).hd_dim(hd_dim).seed(29);

    banner("Ablation: aggregation strategy (alpha = 0.5)");
    let mut agg_table = Table::new(vec!["strategy", "final acc", "rounds to 90%"]);
    for (name, agg) in [
        ("FedAvg", Aggregation::FedAvg),
        ("FedProx mu=0.01", Aggregation::FedProx { mu: 0.01 }),
        ("FedProx mu=0.1", Aggregation::FedProx { mu: 0.1 }),
        ("FedNova", Aggregation::FedNova),
    ] {
        let cfg = base().aggregation(agg).build().expect("valid");
        let report = Framework::hdc_plaintext(cfg, &data).expect("build").run().expect("run");
        agg_table.row(vec![
            name.into(),
            format!("{:.4}", report.final_accuracy),
            report.rounds_to_accuracy(0.9).map_or("-".into(), |r| r.to_string()),
        ]);
        eprintln!("  [{name}] acc {:.4}", report.final_accuracy);
    }
    agg_table.print();

    banner("Ablation: non-IID severity (Dirichlet alpha)");
    let mut alpha_table = Table::new(vec!["alpha", "final acc", "rounds to 90%"]);
    for alpha in [0.1, 0.5, 100.0] {
        let cfg = base().dirichlet_alpha(alpha).build().expect("valid");
        let report = Framework::hdc_plaintext(cfg, &data).expect("build").run().expect("run");
        alpha_table.row(vec![
            alpha.to_string(),
            format!("{:.4}", report.final_accuracy),
            report.rounds_to_accuracy(0.9).map_or("-".into(), |r| r.to_string()),
        ]);
        eprintln!("  [alpha={alpha}] acc {:.4}", report.final_accuracy);
    }
    alpha_table.print();

    banner("Ablation: pre-upload normalization and participation");
    let mut misc_table = Table::new(vec!["variant", "final acc"]);
    for (name, normalize, participation) in [
        ("baseline (raw models, full participation)", false, 1.0),
        ("L2-normalized uploads", true, 1.0),
        ("20% participation per round", false, 0.2),
    ] {
        let cfg = base().normalize(normalize).participation(participation).build().expect("valid");
        let report = Framework::hdc_plaintext(cfg, &data).expect("build").run().expect("run");
        misc_table.row(vec![name.into(), format!("{:.4}", report.final_accuracy)]);
        eprintln!("  [{name}] acc {:.4}", report.final_accuracy);
    }
    misc_table.print();

    println!(
        "\nNotes: raw-model averaging outperforms per-round L2 normalization\n\
         because normalization collapses the scale balance between accumulated\n\
         global knowledge and fresh local updates (see rhychee-core docs);\n\
         partial participation trades rounds for per-round traffic."
    );
    rhychee_bench::emit_metrics_json("ablation_aggregation");
}
