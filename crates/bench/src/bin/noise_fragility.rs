//! Why FHE-FL needs error detection while plain HDC-FL does not
//! (paper §I / §IV-C motivation).
//!
//! FedHD/FHDnn showed that *unencrypted* hypervector models tolerate
//! channel noise: a flipped bit perturbs one model value, and HDC's
//! holographic redundancy absorbs it. Under FHE the same flip corrupts
//! an entire ciphertext ("a single bit error can result in completely
//! incorrect decryption").
//!
//! This experiment runs the same federation twice over a detection-free
//! binary symmetric channel at increasing BER:
//!
//! * **plaintext path** — models cross as 8-bit quantized integers;
//! * **encrypted path** — models cross as CKKS-4 ciphertexts.
//!
//! Expected shape: plaintext accuracy degrades gracefully (barely at
//! all); encrypted accuracy collapses as soon as flips appear —
//! justifying the CRC + retransmission layer of §IV-C.

use rand::{rngs::StdRng, SeedableRng};
use rhychee_bench::{banner, Table};
use rhychee_core::{FlConfig, NoisyChannelConfig, NoisyFederation};
use rhychee_data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fhe::params::CkksParams;
use rhychee_hdc::encoding::{Encoder, RandomProjectionEncoder};
use rhychee_hdc::model::{EncodedDataset, HdcModel};
use rhychee_hdc::quantize::QuantizedModel;
use rhychee_par::Parallelism;

use rhychee_channel::packet::BitFlipChannel;
use rhychee_data::partition::dirichlet_partition_indices;

const QUANT_BITS: u32 = 8;

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, rounds, hd_dim, clients) =
        if quick { (600, 3, 256, 3) } else { (1_200, 4, 512, 5) };

    let data = SyntheticConfig {
        kind: DatasetKind::Har,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(83)
    .expect("dataset generation");

    banner("Noise fragility: plaintext HDC vs FHE ciphertexts (no error detection)");
    let mut table = Table::new(vec!["BER", "plaintext HDC acc", "encrypted (CKKS-4) acc"]);
    for ber in [0.0f64, 1e-6, 1e-5, 1e-4] {
        let plain = plaintext_noisy_run(&data, clients, rounds, hd_dim, ber);
        let cfg = FlConfig::builder()
            .clients(clients)
            .rounds(rounds)
            .hd_dim(hd_dim)
            .seed(47)
            .build()
            .expect("valid config");
        let channel = NoisyChannelConfig { ber, detector: None, ..Default::default() };
        let mut enc =
            NoisyFederation::new(cfg, &data, CkksParams::ckks4(), channel).expect("federation");
        let (enc_report, _) = enc.run().expect("run");
        table.row(vec![
            format!("{ber:.0e}"),
            format!("{plain:.4}"),
            format!("{:.4}", enc_report.final_accuracy),
        ]);
        eprintln!(
            "  [BER {ber:.0e}] plaintext {plain:.4}, encrypted {:.4}",
            enc_report.final_accuracy
        );
    }
    table.print();
    println!(
        "\nShape: plaintext hypervectors absorb bit flips (FedHD/FHDnn's\n\
         robustness result); ciphertexts do not — hence Rhychee-FL pairs FHE\n\
         with CRC-32 detect-and-retransmit (S IV-C), after which noise has no\n\
         effect on convergence (see the noise_robustness experiment)."
    );
    rhychee_bench::emit_metrics_json("noise_fragility");
}

/// Plaintext federated HDC where every model crosses the raw bit-flip
/// channel as 8-bit quantized integers (the FedHD transport model).
fn plaintext_noisy_run(
    data: &TrainTest,
    clients: usize,
    rounds: usize,
    hd_dim: usize,
    ber: f64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(47);
    let classes = data.train.num_classes();
    let encoder = RandomProjectionEncoder::new(data.train.feature_dim(), hd_dim, &mut rng);
    let train_hv = encoder.encode_batch(data.train.features(), Parallelism::sequential());
    let test_hv = encoder.encode_batch(data.test.features(), Parallelism::sequential());
    let test = EncodedDataset::new(test_hv, data.test.labels().to_vec());

    let shards: Vec<EncodedDataset> =
        dirichlet_partition_indices(data.train.labels(), classes, clients, 0.5, &mut rng)
            .into_iter()
            .map(|idx| {
                EncodedDataset::new(
                    idx.iter().map(|&i| train_hv[i].clone()).collect(),
                    idx.iter().map(|&i| data.train.labels()[i]).collect(),
                )
            })
            .collect();

    let channel = BitFlipChannel::new(ber);
    let mut global = vec![0.0f32; classes * hd_dim];
    let mut models: Vec<HdcModel> = (0..clients).map(|_| HdcModel::new(classes, hd_dim)).collect();
    for round in 0..rounds {
        let mut sum = vec![0.0f32; global.len()];
        for (model, shard) in models.iter_mut().zip(&shards) {
            model.load_flat(&global);
            if round == 0 {
                model.bundle(shard);
            }
            for _ in 0..5 {
                model.train_epoch(shard, 5.0);
            }
            // Quantize, serialize, cross the channel, dequantize.
            let q = QuantizedModel::quantize(model, QUANT_BITS);
            let bytes: Vec<u8> = q.to_offset_encoded().iter().map(|&v| v as u8).collect();
            let (received, _) = channel.transmit(&bytes, &mut rng);
            let values: Vec<u64> = received.iter().map(|&b| u64::from(b)).collect();
            let restored = QuantizedModel::from_offset_encoded(
                &values,
                q.scale(),
                QUANT_BITS,
                classes,
                hd_dim,
            )
            .dequantize();
            for (s, v) in sum.iter_mut().zip(restored.flatten()) {
                *s += v / clients as f32;
            }
        }
        // Download: the global model also crosses the channel to each
        // client; use one representative transfer.
        let gm = HdcModel::from_flat(&sum, classes, hd_dim);
        let q = QuantizedModel::quantize(&gm, QUANT_BITS);
        let bytes: Vec<u8> = q.to_offset_encoded().iter().map(|&v| v as u8).collect();
        let (received, _) = channel.transmit(&bytes, &mut rng);
        let values: Vec<u64> = received.iter().map(|&b| u64::from(b)).collect();
        global =
            QuantizedModel::from_offset_encoded(&values, q.scale(), QUANT_BITS, classes, hd_dim)
                .dequantize()
                .flatten();
    }
    HdcModel::from_flat(&global, classes, hd_dim).accuracy(&test)
}
