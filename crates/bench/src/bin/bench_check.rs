//! CI regression gate over bench output: compares a freshly measured
//! document against a committed baseline and fails when a gated figure
//! regressed by more than the allowed ratio.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--max-ratio R]        # BENCH_fhe.json
//! bench_check --net <baseline.json> <fresh.json> [--max-ratio R]  # BENCH_net.json
//! bench_check --decrypt-identity <a.json> <b.json>                # matrix legs
//! ```
//!
//! The default mode joins the `"results"` rows of two `BENCH_fhe.json`
//! documents on `(op, threads)` and gates ns/op — but only rows whose
//! NTT `backend` labels agree (rows without the label, from older
//! baselines, compare with anything). Comparing a scalar baseline
//! against an AVX measurement would misread a hardware change as a
//! speedup or regression; mismatched-backend rows are skipped with a
//! note instead. `--net` gates the scalar figures of `BENCH_net.json`:
//! `fold_view_ns_per_ct` plus the memory peaks (`heap_peak_bytes`,
//! `rss_peak_bytes`). A missing or field-incomplete `--net` baseline
//! skips those comparisons with a note instead of failing — the
//! baseline grows fields (and appears at all) one commit after the
//! bench starts emitting them. `--decrypt-identity` compares the
//! `decrypt_fingerprint` of two artifacts from the same commit (CI's
//! `RHYCHEE_NTT_BACKEND` matrix legs) and fails on any difference: NTT
//! backends are bit-identical by contract, so the seeded decrypt output
//! must match exactly.
//!
//! Exit codes: 0 = within budget, 1 = regression past `--max-ratio`
//! (default 2.0 — generous on purpose, CI runners are noisy), 2 =
//! usage or parse error. Rows present on only one side are reported
//! but never fail the gate: the op set may grow between commits, and
//! the thread sweep depends on the runner's core count.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::{env, fs};

#[derive(Debug, Clone, PartialEq)]
struct BenchRow {
    op: String,
    threads: u64,
    ns_per_op: f64,
    /// NTT backend label; `None` for rows that pre-date the field.
    backend: Option<String>,
}

/// Extracts the string value of `"key"` from one JSON object body.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let at = obj.find(&format!("\"{key}\""))?;
    let rest = obj[at..].split_once(':')?.1.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts the numeric value of `"key"` from one JSON object body.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let at = obj.find(&format!("\"{key}\""))?;
    let rest = obj[at..].split_once(':')?.1.trim_start();
    let lit: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    lit.parse().ok()
}

/// Parses the `"results"` array of a `BENCH_fhe.json` document into
/// rows. Only the three fields the gate compares are read; everything
/// else in each row object is ignored.
fn parse_results(json: &str) -> Result<Vec<BenchRow>, String> {
    let at = json.find("\"results\"").ok_or("no \"results\" array in document")?;
    let open = json[at..].find('[').ok_or("\"results\" is not an array")? + at;
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in json[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let arr = &json[open + 1..close.ok_or("unterminated \"results\" array")?];

    let mut rows = Vec::new();
    let mut rest = arr;
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or("unterminated row object")? + start;
        let obj = &rest[start + 1..end];
        rows.push(BenchRow {
            op: str_field(obj, "op").ok_or_else(|| format!("row without \"op\": {obj}"))?,
            threads: num_field(obj, "threads")
                .ok_or_else(|| format!("row without \"threads\": {obj}"))?
                as u64,
            ns_per_op: num_field(obj, "ns_per_op")
                .ok_or_else(|| format!("row without \"ns_per_op\": {obj}"))?,
            backend: str_field(obj, "backend"),
        });
        rest = &rest[end + 1..];
    }
    if rows.is_empty() {
        return Err("\"results\" array holds no rows".into());
    }
    Ok(rows)
}

#[derive(Debug)]
struct Comparison {
    op: String,
    threads: u64,
    baseline_ns: f64,
    fresh_ns: f64,
    ratio: f64,
}

/// `true` when two rows ran on comparable NTT backends: equal labels,
/// or either side pre-dates the label (legacy baselines gate against
/// whatever the fresh run used, as they always have).
fn backends_comparable(a: &BenchRow, b: &BenchRow) -> bool {
    match (&a.backend, &b.backend) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// Joins the two row sets on `(op, threads)` plus backend
/// compatibility. Errors when the intersection is empty — a gate that
/// compares nothing must not pass.
fn compare(baseline: &[BenchRow], fresh: &[BenchRow]) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    for b in baseline {
        let Some(f) = fresh
            .iter()
            .find(|f| f.op == b.op && f.threads == b.threads && backends_comparable(b, f))
        else {
            if fresh.iter().any(|f| f.op == b.op && f.threads == b.threads) {
                println!(
                    "bench_check: {}@{}t backend changed ({} -> fresh hardware); skipping",
                    b.op,
                    b.threads,
                    b.backend.as_deref().unwrap_or("unlabeled")
                );
            }
            continue;
        };
        if b.ns_per_op <= 0.0 {
            return Err(format!("baseline {}@{}t has non-positive ns/op", b.op, b.threads));
        }
        out.push(Comparison {
            op: b.op.clone(),
            threads: b.threads,
            baseline_ns: b.ns_per_op,
            fresh_ns: f.ns_per_op,
            ratio: f.ns_per_op / b.ns_per_op,
        });
    }
    if out.is_empty() {
        return Err("no (op, threads) rows shared between baseline and fresh results".into());
    }
    Ok(out)
}

fn render_table(comparisons: &[Comparison], max_ratio: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>7} {:>14} {:>14} {:>7}  status",
        "op", "threads", "baseline", "fresh", "ratio"
    );
    for c in comparisons {
        let status = if c.ratio > max_ratio { "REGRESSED" } else { "ok" };
        let _ = writeln!(
            out,
            "{:<26} {:>7} {:>12.1}ns {:>12.1}ns {:>6.2}x  {status}",
            c.op, c.threads, c.baseline_ns, c.fresh_ns, c.ratio
        );
    }
    out
}

/// The `BENCH_net.json` figures the `--net` gate compares, all under
/// the same `--max-ratio` budget: the fold hot-path latency and the
/// memory peaks a leak or backpressure failure would inflate.
const NET_GATED: &[&str] = &["fold_view_ns_per_ct", "heap_peak_bytes", "rss_peak_bytes"];

/// Gates the scalar figures of a fresh `BENCH_net.json` against a
/// baseline. Missing baseline file or missing baseline fields skip
/// gracefully (the gate can only tighten once a baseline exists).
fn run_net(baseline_path: &str, fresh_path: &str, max_ratio: f64) -> Result<ExitCode, String> {
    let fresh = fs::read_to_string(fresh_path).map_err(|e| format!("{fresh_path}: {e}"))?;
    let baseline = match fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(_) => {
            println!(
                "bench_check: no net baseline at {baseline_path} yet — nothing to gate (pass)"
            );
            return Ok(ExitCode::SUCCESS);
        }
    };
    let mut compared = 0usize;
    let mut regressed = 0usize;
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<24} {:>16} {:>16} {:>7}  status", "figure", "baseline", "fresh", "ratio");
    for key in NET_GATED {
        let Some(f) = num_field(&fresh, key) else {
            println!("bench_check: fresh {fresh_path} lacks \"{key}\"; skipping");
            continue;
        };
        let Some(b) = num_field(&baseline, key) else {
            println!("bench_check: baseline lacks \"{key}\" (pre-dates the field); skipping");
            continue;
        };
        if b <= 0.0 {
            // Peak RSS reads 0 where procfs is unavailable; a zero
            // baseline cannot anchor a ratio.
            println!("bench_check: baseline \"{key}\" is {b}; skipping");
            continue;
        }
        compared += 1;
        let ratio = f / b;
        let status = if ratio > max_ratio {
            regressed += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        let _ = writeln!(out, "{key:<24} {b:>16.1} {f:>16.1} {ratio:>6.2}x  {status}");
    }
    print!("{out}");
    if compared == 0 {
        println!("bench_check: no net figures shared with the baseline — nothing to gate (pass)");
        return Ok(ExitCode::SUCCESS);
    }
    if regressed == 0 {
        println!("bench_check: {compared} net figure(s) within {max_ratio}x of baseline");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("bench_check: {regressed} net figure(s) regressed past {max_ratio}x");
        Ok(ExitCode::FAILURE)
    }
}

/// Compares the `decrypt_fingerprint` of two `BENCH_fhe.json`
/// artifacts. Both present and equal → pass; both present and
/// different → fail (a backend broke bit-identity); either missing →
/// skip-pass with a note (pre-fingerprint artifact).
fn run_decrypt_identity(a_path: &str, b_path: &str) -> Result<ExitCode, String> {
    let read = |p: &str| fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let a = read(a_path)?;
    let b = read(b_path)?;
    let (fa, fb) = (str_field(&a, "decrypt_fingerprint"), str_field(&b, "decrypt_fingerprint"));
    match (fa, fb) {
        (Some(fa), Some(fb)) if fa == fb => {
            let backend = |s: &str| str_field(s, "ntt_backend").unwrap_or_else(|| "?".into());
            println!(
                "bench_check: decrypt fingerprints agree ({fa}; backends {} vs {})",
                backend(&a),
                backend(&b)
            );
            Ok(ExitCode::SUCCESS)
        }
        (Some(fa), Some(fb)) => {
            eprintln!(
                "bench_check: decrypt fingerprints disagree: {a_path} has {fa}, {b_path} has \
                 {fb} — an NTT backend broke bit-identity with scalar"
            );
            Ok(ExitCode::FAILURE)
        }
        _ => {
            println!(
                "bench_check: at least one artifact lacks \"decrypt_fingerprint\" \
                 (pre-dates the field); nothing to compare (pass)"
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut net = false;
    let mut decrypt_identity = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--net" {
            net = true;
        } else if arg == "--decrypt-identity" {
            decrypt_identity = true;
        } else if arg == "--max-ratio" {
            max_ratio = it
                .next()
                .ok_or("--max-ratio needs a value")?
                .parse()
                .map_err(|e| format!("--max-ratio: {e}"))?;
            if !(max_ratio.is_finite() && max_ratio > 0.0) {
                return Err("--max-ratio must be a positive finite number".into());
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err(
            "usage: bench_check [--net | --decrypt-identity] <baseline.json> <fresh.json> \
             [--max-ratio R]"
                .into(),
        );
    };
    if decrypt_identity {
        return run_decrypt_identity(baseline_path, fresh_path);
    }
    if net {
        return run_net(baseline_path, fresh_path, max_ratio);
    }
    let read = |p: &String| fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let baseline =
        parse_results(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = parse_results(&read(fresh_path)?).map_err(|e| format!("{fresh_path}: {e}"))?;

    let comparisons = compare(&baseline, &fresh)?;
    print!("{}", render_table(&comparisons, max_ratio));
    let regressed: Vec<&Comparison> = comparisons.iter().filter(|c| c.ratio > max_ratio).collect();
    if regressed.is_empty() {
        println!("bench_check: {} row(s) within {max_ratio}x of baseline", comparisons.len());
        Ok(ExitCode::SUCCESS)
    } else {
        for c in &regressed {
            eprintln!(
                "bench_check: {}@{}t regressed {:.2}x (baseline {:.1}ns/op, fresh {:.1}ns/op, budget {max_ratio}x)",
                c.op, c.threads, c.ratio, c.baseline_ns, c.fresh_ns
            );
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run(&env::args().skip(1).collect::<Vec<_>>()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "machine_cores": 1,
  "results": [
    {"op": "ntt_forward", "threads": 1, "ns_per_op": 7000.0, "machine_cores": 1, "oversubscribed": false},
    {"op": "encrypt_model", "threads": 1, "ns_per_op": 1200000.5, "machine_cores": 1, "oversubscribed": false},
    {"op": "encrypt_model", "threads": 2, "ns_per_op": 700000.0, "machine_cores": 2, "oversubscribed": false}
  ]
}"#;

    #[test]
    fn parses_bench_fhe_results_rows() {
        let rows = parse_results(SAMPLE).expect("parse");
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            BenchRow { op: "ntt_forward".into(), threads: 1, ns_per_op: 7000.0, backend: None }
        );
        assert_eq!(rows[2].threads, 2, "thread sweep rows keep their degree");
    }

    #[test]
    fn parses_backend_labels_when_present() {
        let doc = r#"{"results": [
            {"op": "ntt_forward_avx2", "backend": "avx2", "threads": 1, "ns_per_op": 3000.0}
        ]}"#;
        let rows = parse_results(doc).expect("parse");
        assert_eq!(rows[0].backend.as_deref(), Some("avx2"));
    }

    #[test]
    fn mismatched_backends_skip_instead_of_comparing() {
        let row = |backend: Option<&str>, ns: f64| BenchRow {
            op: "encrypt_model".into(),
            threads: 1,
            ns_per_op: ns,
            backend: backend.map(Into::into),
        };
        // Baseline ran on avx512, fresh runner only has scalar: the
        // pair must not be compared (it would read as a 3x regression).
        assert!(compare(&[row(Some("avx512"), 100.0)], &[row(Some("scalar"), 300.0)]).is_err());
        // Same backend still gates.
        let cmp = compare(&[row(Some("scalar"), 100.0)], &[row(Some("scalar"), 300.0)])
            .expect("same backend compares");
        assert!((cmp[0].ratio - 3.0).abs() < 1e-12);
        // Unlabeled legacy baseline compares with anything.
        let cmp = compare(&[row(None, 100.0)], &[row(Some("avx2"), 150.0)]).expect("legacy");
        assert!((cmp[0].ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn decrypt_identity_gate_passes_agrees_fails_disagrees() {
        let dir = std::env::temp_dir().join(format!("rhychee-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let write = |name: &str, body: &str| {
            let p = dir.join(name);
            std::fs::write(&p, body).expect("write");
            p.to_str().unwrap().to_owned()
        };
        let a = write(
            "a.json",
            "{\"ntt_backend\": \"scalar\", \"decrypt_fingerprint\": \"0xdeadbeef\"}",
        );
        let same = write(
            "same.json",
            "{\"ntt_backend\": \"avx512\", \"decrypt_fingerprint\": \"0xdeadbeef\"}",
        );
        let diff = write(
            "diff.json",
            "{\"ntt_backend\": \"avx512\", \"decrypt_fingerprint\": \"0x12345678\"}",
        );
        let old = write("old.json", "{\"machine_cores\": 1}");
        let code = run_decrypt_identity(&a, &same).expect("gate");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        let code = run_decrypt_identity(&a, &diff).expect("gate");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::FAILURE));
        let code = run_decrypt_identity(&a, &old).expect("pre-fingerprint artifact skips");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_documents_without_rows() {
        assert!(parse_results("{\"results\": []}").is_err());
        assert!(parse_results("{\"machine_cores\": 1}").is_err());
        assert!(parse_results("{\"results\": [{\"threads\": 1}]}").is_err());
    }

    #[test]
    fn compares_on_op_and_threads_and_flags_regressions() {
        let baseline = parse_results(SAMPLE).expect("parse");
        // Fresh run: ntt 1.5x slower (ok at 2x budget), encrypt@1t 3x
        // slower (regression), encrypt@2t missing (runner has 1 core).
        let fresh = vec![
            BenchRow { op: "ntt_forward".into(), threads: 1, ns_per_op: 10500.0, backend: None },
            BenchRow {
                op: "encrypt_model".into(),
                threads: 1,
                ns_per_op: 3_600_001.5,
                backend: None,
            },
            BenchRow { op: "brand_new_op".into(), threads: 1, ns_per_op: 1.0, backend: None },
        ];
        let cmp = compare(&baseline, &fresh).expect("overlap");
        assert_eq!(cmp.len(), 2, "only shared rows compare");
        assert!((cmp[0].ratio - 1.5).abs() < 1e-9);
        assert!(cmp[1].ratio > 2.0 && cmp[1].ratio < 3.1);
        let table = render_table(&cmp, 2.0);
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.lines().count() == 3, "{table}");
    }

    #[test]
    fn disjoint_row_sets_are_an_error_not_a_pass() {
        let baseline = vec![BenchRow { op: "a".into(), threads: 1, ns_per_op: 1.0, backend: None }];
        let fresh = vec![BenchRow { op: "b".into(), threads: 1, ns_per_op: 1.0, backend: None }];
        assert!(compare(&baseline, &fresh).is_err(), "empty intersection must not gate-pass");
    }

    #[test]
    fn net_gate_reads_scalar_fields() {
        let doc = r#"{
  "clients": 64,
  "fold_view_ns_per_ct": 123456.7,
  "heap_peak_bytes": 104857600,
  "rss_peak_bytes": 209715200,
  "federation_secs": 3.2
}"#;
        assert_eq!(num_field(doc, "fold_view_ns_per_ct"), Some(123456.7));
        assert_eq!(num_field(doc, "heap_peak_bytes"), Some(104857600.0));
        assert_eq!(num_field(doc, "rss_peak_bytes"), Some(209715200.0));
        assert_eq!(num_field(doc, "nonexistent"), None);
    }

    #[test]
    fn net_gate_passes_without_a_baseline_and_fails_on_regression() {
        let dir = std::env::temp_dir().join(format!("rhychee-benchcheck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let fresh = dir.join("fresh.json");
        let missing = dir.join("never-written.json");
        std::fs::write(
            &fresh,
            "{\"fold_view_ns_per_ct\": 100.0, \"heap_peak_bytes\": 1000, \"rss_peak_bytes\": 0}",
        )
        .expect("write fresh");
        // No baseline yet: the gate must pass, not error.
        let code = run_net(missing.to_str().unwrap(), fresh.to_str().unwrap(), 2.0)
            .expect("missing baseline is not an error");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        // Identical baseline: passes. rss 0 baseline is skipped, not a div-by-zero.
        let base = dir.join("base.json");
        std::fs::write(
            &base,
            "{\"fold_view_ns_per_ct\": 100.0, \"heap_peak_bytes\": 1000, \"rss_peak_bytes\": 0}",
        )
        .expect("write base");
        let code = run_net(base.to_str().unwrap(), fresh.to_str().unwrap(), 2.0).expect("gate");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        // 3x fold regression past the 2x budget: fails.
        let slow = dir.join("slow.json");
        std::fs::write(
            &slow,
            "{\"fold_view_ns_per_ct\": 300.0, \"heap_peak_bytes\": 1000, \"rss_peak_bytes\": 0}",
        )
        .expect("write slow");
        let code = run_net(base.to_str().unwrap(), slow.to_str().unwrap(), 2.0).expect("gate");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::FAILURE));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_runs_pass_exactly() {
        let rows = parse_results(SAMPLE).expect("parse");
        let cmp = compare(&rows, &rows).expect("overlap");
        assert!(cmp.iter().all(|c| (c.ratio - 1.0).abs() < 1e-12));
    }
}
