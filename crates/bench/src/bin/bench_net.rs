//! Streaming-aggregation e2e benchmark over loopback TCP.
//!
//! Runs a real 64-client encrypted federation through the server's
//! streaming receive path (uploads folded into the running encrypted
//! sum as frames arrive), scrapes the observability endpoint's
//! `/metrics` afterwards, and **fails** (exit 1) if the server's peak
//! count of simultaneously resident uploads exceeded twice the
//! configured fold concurrency — the O(1)-memory claim of the
//! streaming redesign, asserted from the outside. Also times the
//! zero-copy `fold_view` hot path and writes both to `BENCH_net.json`
//! for the CI trend line.
//!
//! `--quick` shrinks the federation to 16 clients.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::thread;
use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};

use rhychee_bench::{banner, emit_metrics_json, init_telemetry, Table};
use rhychee_core::packing;
use rhychee_core::round::{self, ClientLocal, FedSetup};
use rhychee_core::FlConfig;
use rhychee_data::{DatasetKind, SyntheticConfig};
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::params::CkksParams;
use rhychee_net::{ClientConfig, ClientPipeline, FlClient, FlServer, ServerConfig, ServerPipeline};
use rhychee_obs::ObsServer;

/// Median-of-runs wall time per call, in nanoseconds.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warm-up
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// One `GET <path>` against the exposition server, returning the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to obs");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("send scrape");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    response.split_once("\r\n\r\n").expect("http head/body split").1.to_owned()
}

/// Extracts the value of an unlabeled Prometheus sample line.
fn sample(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

fn main() {
    init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let clients: usize = if quick { 16 } else { 64 };
    let max_resident = 4usize;
    let hd_dim = 64usize;

    let data =
        SyntheticConfig { kind: DatasetKind::Har, train_samples: clients * 10, test_samples: 64 }
            .generate(101)
            .expect("dataset generation");
    let fl = FlConfig::builder()
        .clients(clients)
        .rounds(1)
        .hd_dim(hd_dim)
        .seed(29)
        .build()
        .expect("valid config");
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    banner(&format!(
        "streaming aggregation over loopback: {clients} clients, {num_params} params, \
         fold concurrency {max_resident}"
    ));

    let obs = ObsServer::bind("127.0.0.1:0").expect("obs bind").spawn().expect("obs spawn");
    let obs_addr = obs.addr();

    let cfg = ServerConfig::builder()
        .clients(clients)
        .rounds(fl.rounds)
        .model_params(num_params)
        .max_resident_uploads(max_resident)
        .build()
        .expect("server config");
    assert!(cfg.streaming_aggregation(), "streaming must be the default path");
    let server =
        FlServer::bind("127.0.0.1:0", cfg, ServerPipeline::Ckks(CkksParams::toy())).expect("bind");
    let addr = server.local_addr().expect("local addr");

    let wall = Instant::now();
    let server = thread::spawn(move || server.run());
    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, &fl);
        let client = FlClient::new(
            ClientConfig::new(addr),
            fl.clone(),
            local,
            classes,
            None,
            ClientPipeline::Ckks(CkksParams::toy()),
        )
        .expect("client");
        joins.push(thread::spawn(move || client.run()));
    }
    for j in joins {
        j.join().expect("client thread").expect("client run");
    }
    let report = server.join().expect("server thread").expect("server run");
    let federation_secs = wall.elapsed().as_secs_f64();

    let metrics = http_get(obs_addr, "/metrics");
    drop(obs);
    let peak = sample(&metrics, "rhychee_net_agg_peak_resident_uploads")
        .expect("peak-resident gauge missing from /metrics");
    let folds = sample(&metrics, "rhychee_fl_agg_folds_total").unwrap_or(0.0);

    // The zero-copy fold hot path, isolated: one serialized upload
    // folded into a live accumulator, per model chunk.
    let ctx = CkksContext::new(CkksParams::toy()).expect("context");
    let mut rng = StdRng::seed_from_u64(3);
    let (_sk, pk) = ctx.generate_keys(&mut rng);
    let flat: Vec<f32> = (0..num_params).map(|i| (i as f32 * 0.01).cos()).collect();
    let cts = packing::encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt");
    let blobs: Vec<Vec<u8>> = cts.iter().map(|ct| ctx.serialize(ct)).collect();
    let views: Vec<_> = blobs.iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
    let mut acc: Vec<_> = views.iter().map(|v| ctx.accumulator_for(v)).collect();
    let fold_ns = time_ns(256, || {
        for (a, v) in acc.iter_mut().zip(&views) {
            ctx.fold_view(a, v).expect("fold");
        }
    }) / cts.len() as f64;

    let (heap_peak, rss_peak) = rhychee_bench::peak_memory();
    let mut table = Table::new(vec!["measure", "value"]);
    table.row(vec!["clients".into(), clients.to_string()]);
    table.row(vec!["updates folded".into(), format!("{folds:.0}")]);
    table.row(vec!["peak resident uploads".into(), format!("{peak:.0}")]);
    table.row(vec!["residency cap".into(), max_resident.to_string()]);
    table.row(vec!["fold_view ns/op (per ct)".into(), format!("{fold_ns:.0}")]);
    table.row(vec!["heap peak".into(), format!("{:.1} MiB", heap_peak as f64 / (1 << 20) as f64)]);
    table.row(vec!["rss peak".into(), format!("{:.1} MiB", rss_peak as f64 / (1 << 20) as f64)]);
    table.row(vec!["federation wall time".into(), format!("{federation_secs:.2}s")]);
    table.print();

    let received: usize = report.rounds.iter().map(|r| r.received).sum();
    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"model_params\": {num_params},\n  \
         \"updates_received\": {received},\n  \"folds\": {folds:.0},\n  \
         \"max_resident_uploads\": {max_resident},\n  \
         \"peak_resident_uploads\": {peak:.0},\n  \
         \"fold_view_ns_per_ct\": {fold_ns:.1},\n  \
         \"heap_peak_bytes\": {heap_peak},\n  \
         \"rss_peak_bytes\": {rss_peak},\n  \
         \"federation_secs\": {federation_secs:.3}\n}}\n"
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("\nwrote BENCH_net.json");
    emit_metrics_json("bench_net");

    // The headline assertion: server memory stayed O(1) in client
    // count. A peak above 2x the fold concurrency means backpressure
    // failed and uploads accumulated.
    let cap = 2 * max_resident;
    assert!(peak >= 1.0, "no resident uploads recorded — streaming path not exercised");
    if peak as usize > cap {
        eprintln!(
            "FAIL: peak resident uploads {peak:.0} exceeds {cap} \
             (2x the fold concurrency of {max_resident}) with {clients} clients"
        );
        std::process::exit(1);
    }
    println!(
        "OK: peak resident uploads {peak:.0} <= {cap} with {clients} clients \
         (streaming held O(1) server memory)"
    );
}
