//! FHE hot-path microbenchmarks across parallelism degrees.
//!
//! Times the three operations the `rhychee-par` pool accelerates — the
//! forward NTT (Shoup/Harvey butterflies), packed model encryption, and
//! homomorphic weighted aggregation — at 1, 2, and 4 threads, and
//! writes the measurements to `BENCH_fhe.json` for the CI trend line.
//! Parallelism never changes results (see `tests/parallel_determinism`),
//! so every degree benchmarks the same arithmetic.
//!
//! The thread sweep is clamped to the machine's core count by default:
//! on a 1-core container, degrees 2 and 4 only measure oversubscription
//! overhead, and BENCH_fhe.json would be misread as a parallelism
//! regression. Pass `--all-threads` to force the full sweep; forced
//! oversubscribed rows are flagged both per row and in a top-level
//! `warning` field.
//!
//! `--quick` shrinks the parameter set and iteration counts.

use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};

use rhychee_bench::{banner, emit_metrics_json, init_telemetry, Table};
use rhychee_core::packing;
use rhychee_fhe::ckks::modarith::find_ntt_primes;
use rhychee_fhe::ckks::ntt::NttTable;
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::params::CkksParams;
use rhychee_par::Parallelism;

/// Median-of-runs wall time per call, in nanoseconds.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warm-up: populate pool workers, caches, allocations
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

struct Sample {
    op: &'static str,
    threads: usize,
    ns_per_op: f64,
}

fn main() {
    init_telemetry();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all_threads = args.iter().any(|a| a == "--all-threads");
    let (params, model_params, clients, iters) = if quick {
        (CkksParams::toy(), 2_000usize, 4usize, 8usize)
    } else {
        (CkksParams::ckks3(), 20_000, 4, 4)
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let full_sweep = [1usize, 2, 4];
    let degrees: Vec<usize> = if all_threads {
        full_sweep.to_vec()
    } else {
        full_sweep.iter().copied().filter(|&d| d <= cores).collect()
    };
    let clamped = degrees.len() < full_sweep.len();
    let warning = if clamped {
        Some(format!(
            "thread sweep clamped to {cores} available core(s); degrees above that would \
             measure oversubscription, not parallel speedup (pass --all-threads to force)"
        ))
    } else if degrees.iter().any(|&d| d > cores) {
        Some(format!(
            "--all-threads forced degrees above the {cores} available core(s); \
             oversubscribed rows measure scheduling overhead, not parallel speedup"
        ))
    } else {
        None
    };

    banner(&format!(
        "FHE hot paths at {} threads on {cores} core(s) (N = {}, {} params, {} clients)",
        degrees.iter().map(ToString::to_string).collect::<Vec<_>>().join("/"),
        params.n,
        model_params,
        clients
    ));
    if let Some(w) = &warning {
        eprintln!("  warning: {w}");
    }

    let mut samples: Vec<Sample> = Vec::new();

    // Raw forward NTT: one prime, one polynomial — the sequential
    // building block every threaded path fans out over. Constant across
    // degrees by construction; measured once and reported per degree so
    // the JSON stays rectangular.
    let q = find_ntt_primes(55, 1, 2 * params.n as u64)[0];
    let table_ntt = NttTable::new(params.n, q);
    let mut poly: Vec<u64> = (0..params.n as u64).map(|i| i.wrapping_mul(0x9E3779B9) % q).collect();
    let ntt_ns = time_ns(iters.max(16), || table_ntt.forward(&mut poly));
    for &threads in &degrees {
        samples.push(Sample { op: "ntt_forward", threads, ns_per_op: ntt_ns });
    }

    for &threads in &degrees {
        let par = Parallelism::Fixed(threads);
        let ctx = CkksContext::with_parallelism(params.clone(), par).expect("context");
        let mut rng = StdRng::seed_from_u64(7);
        let (_sk, pk) = ctx.generate_keys(&mut rng);
        let flat: Vec<f32> = (0..model_params).map(|i| (i as f32 * 0.01).sin()).collect();

        let encrypt_ns = time_ns(iters, || {
            let cts = packing::encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt");
            std::hint::black_box(cts);
        });
        samples.push(Sample { op: "encrypt_model", threads, ns_per_op: encrypt_ns });

        let models: Vec<_> = (0..clients)
            .map(|_| packing::encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt"))
            .collect();
        let weights = vec![1.0 / clients as f64; clients];
        let aggregate_ns = time_ns(iters, || {
            let global =
                packing::homomorphic_weighted_average(&ctx, &models, &weights).expect("aggregate");
            std::hint::black_box(global);
        });
        samples.push(Sample { op: "aggregate", threads, ns_per_op: aggregate_ns });
        eprintln!("  [threads = {threads}] done");
    }

    let mut table = Table::new(vec!["op", "threads", "ns/op", "ms/op", "speedup vs 1"]);
    for s in &samples {
        let base = samples
            .iter()
            .find(|b| b.op == s.op && b.threads == 1)
            .map_or(s.ns_per_op, |b| b.ns_per_op);
        let threads = if s.threads > cores {
            format!("{} (oversub)", s.threads)
        } else {
            s.threads.to_string()
        };
        table.row(vec![
            s.op.into(),
            threads,
            format!("{:.0}", s.ns_per_op),
            format!("{:.3}", s.ns_per_op / 1e6),
            format!("{:.2}x", base / s.ns_per_op),
        ]);
    }
    table.print();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"machine_cores\": {cores},\n"));
    if let Some(w) = &warning {
        json.push_str(&format!("  \"warning\": \"{w}\",\n"));
    }
    json.push_str(&format!("  \"ring_degree\": {},\n", params.n));
    json.push_str(&format!("  \"model_params\": {model_params},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"threads\": {}, \"ns_per_op\": {:.1}, \
             \"machine_cores\": {cores}, \"oversubscribed\": {}}}{comma}\n",
            s.op,
            s.threads,
            s.ns_per_op,
            s.threads > cores
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fhe.json", &json).expect("write BENCH_fhe.json");
    println!("\nwrote BENCH_fhe.json ({} samples, {cores} host cores)", samples.len());
    emit_metrics_json("bench_fhe");
}
