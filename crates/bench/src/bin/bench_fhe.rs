//! FHE hot-path microbenchmarks across parallelism degrees.
//!
//! Times the operations the `rhychee-par` pool accelerates — the
//! forward NTT (Shoup/Harvey butterflies), packed model encryption
//! (NTT-resident, coefficient-domain reference, and symmetric seeded),
//! homomorphic weighted aggregation, and model decryption — at 1, 2,
//! and 4 threads, and writes the measurements to `BENCH_fhe.json` for
//! the CI trend line, together with canonical vs seeded wire sizes.
//! Parallelism never changes results (see `tests/parallel_determinism`),
//! so every degree benchmarks the same arithmetic.
//!
//! The thread sweep is clamped to the machine's core count by default:
//! on a 1-core container, degrees 2 and 4 only measure oversubscription
//! overhead, and BENCH_fhe.json would be misread as a parallelism
//! regression. Pass `--all-threads` to force the full sweep; forced
//! oversubscribed rows are flagged both per row and in a top-level
//! `warning` field.
//!
//! `--quick` shrinks the parameter set and iteration counts.

use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};

use rhychee_bench::{banner, emit_metrics_json, init_telemetry, Table};
use rhychee_core::packing;
use rhychee_fhe::ckks::modarith::find_ntt_primes;
use rhychee_fhe::ckks::ntt::NttTable;
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::params::CkksParams;
use rhychee_par::Parallelism;

/// Median-of-runs wall time per call, in nanoseconds.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warm-up: populate pool workers, caches, allocations
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

struct Sample {
    op: String,
    threads: usize,
    ns_per_op: f64,
    /// NTT backend the row ran on: per-backend rows pin it explicitly,
    /// everything else inherits the process-wide active kernel.
    backend: &'static str,
}

/// FNV-1a over the decrypted model's `f32` bit patterns: a cheap,
/// dependency-free fingerprint CI compares across `RHYCHEE_NTT_BACKEND`
/// matrix legs. Backends are bit-identical by contract, and the bench
/// RNG is seeded, so two artifacts from the same commit must agree.
fn decrypt_fingerprint(flat: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in flat {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// `--probe-encrypt` child mode: the NTT backend is resolved once per
/// process, so per-backend `encrypt_model` rows come from re-executing
/// this binary with `RHYCHEE_NTT_BACKEND` overridden. Prints one
/// machine-readable line and exits.
fn run_encrypt_probe(params: &CkksParams, model_params: usize, iters: usize) {
    let ctx = CkksContext::with_parallelism(params.clone(), Parallelism::Fixed(1))
        .expect("probe context");
    let mut rng = StdRng::seed_from_u64(7);
    let (_sk, pk) = ctx.generate_keys(&mut rng);
    let flat: Vec<f32> = (0..model_params).map(|i| (i as f32 * 0.01).sin()).collect();
    let ns = time_ns(iters, || {
        let cts = packing::encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt");
        std::hint::black_box(cts);
    });
    let backend = rhychee_fhe::ckks::ntt::active_kernel().name();
    println!("probe encrypt_model {backend} {ns:.1}");
}

/// Spawns one `--probe-encrypt` child per non-active backend and parses
/// its row. Probe failures skip the row (with a note) rather than
/// failing the bench: the matrix of compiled backends is host-dependent.
fn probe_other_backends(quick: bool, active: &str) -> Vec<Sample> {
    let Ok(exe) = std::env::current_exe() else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for kernel in rhychee_fhe::ckks::ntt::available_kernels() {
        let name = kernel.name();
        if name == active {
            continue;
        }
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--probe-encrypt").env("RHYCHEE_NTT_BACKEND", name);
        if quick {
            cmd.arg("--quick");
        }
        let parsed = cmd.output().ok().and_then(|out| {
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            let line = stdout.lines().find(|l| l.starts_with("probe encrypt_model"))?;
            let mut it = line.split_whitespace().skip(2);
            let backend = it.next()?;
            let ns: f64 = it.next()?.parse().ok()?;
            (backend == name).then_some(ns)
        });
        match parsed {
            Some(ns) => rows.push(Sample {
                op: "encrypt_model".into(),
                threads: 1,
                ns_per_op: ns,
                backend: name,
            }),
            None => eprintln!("  note: encrypt probe for backend {name} failed; row skipped"),
        }
    }
    rows
}

fn main() {
    init_telemetry();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all_threads = args.iter().any(|a| a == "--all-threads");
    let (params, model_params, clients, iters) = if quick {
        (CkksParams::toy(), 2_000usize, 4usize, 24usize)
    } else {
        (CkksParams::ckks3(), 20_000, 4, 4)
    };
    if args.iter().any(|a| a == "--probe-encrypt") {
        run_encrypt_probe(&params, model_params, iters);
        return;
    }
    let ntt_backend = rhychee_fhe::ckks::ntt::active_kernel().name();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let full_sweep = [1usize, 2, 4];
    let degrees: Vec<usize> = if all_threads {
        full_sweep.to_vec()
    } else {
        full_sweep.iter().copied().filter(|&d| d <= cores).collect()
    };
    let clamped = degrees.len() < full_sweep.len();
    let warning = if clamped {
        Some(format!(
            "thread sweep clamped to {cores} available core(s); degrees above that would \
             measure oversubscription, not parallel speedup (pass --all-threads to force)"
        ))
    } else if degrees.iter().any(|&d| d > cores) {
        Some(format!(
            "--all-threads forced degrees above the {cores} available core(s); \
             oversubscribed rows measure scheduling overhead, not parallel speedup"
        ))
    } else {
        None
    };

    banner(&format!(
        "FHE hot paths at {} threads on {cores} core(s) (N = {}, {} params, {} clients)",
        degrees.iter().map(ToString::to_string).collect::<Vec<_>>().join("/"),
        params.n,
        model_params,
        clients
    ));
    if let Some(w) = &warning {
        eprintln!("  warning: {w}");
    }

    let mut samples: Vec<Sample> = Vec::new();

    // Raw forward NTT: one prime, one polynomial — the sequential
    // building block every threaded path fans out over. Constant across
    // degrees by construction; measured once and reported per degree so
    // the JSON stays rectangular.
    let q = find_ntt_primes(55, 1, 2 * params.n as u64)[0];
    let table_ntt = NttTable::new(params.n, q);
    let mut poly: Vec<u64> = (0..params.n as u64).map(|i| i.wrapping_mul(0x9E3779B9) % q).collect();
    let ntt_ns = time_ns(iters.max(16), || table_ntt.forward(&mut poly));
    for &threads in &degrees {
        samples.push(Sample {
            op: "ntt_forward".into(),
            threads,
            ns_per_op: ntt_ns,
            backend: ntt_backend,
        });
    }

    // Per-backend NTT rows: every compiled-and-detected kernel, pinned
    // via `with_kernel` (kernels are stateless, so one process measures
    // them all). The `ntt_forward_<backend>` rows let bench_check trend
    // each backend like-for-like even when the active one changes.
    for kernel in rhychee_fhe::ckks::ntt::available_kernels() {
        let table = NttTable::with_kernel(params.n, q, *kernel);
        let fwd_ns = time_ns(iters.max(16), || table.forward(&mut poly));
        samples.push(Sample {
            op: format!("ntt_forward_{}", kernel.name()),
            threads: 1,
            ns_per_op: fwd_ns,
            backend: kernel.name(),
        });
        let inv_ns = time_ns(iters.max(16), || table.inverse(&mut poly));
        samples.push(Sample {
            op: format!("ntt_inverse_{}", kernel.name()),
            threads: 1,
            ns_per_op: inv_ns,
            backend: kernel.name(),
        });
    }

    for &threads in &degrees {
        let par = Parallelism::Fixed(threads);
        let ctx = CkksContext::with_parallelism(params.clone(), par).expect("context");
        let mut ctx_ref = CkksContext::with_parallelism(params.clone(), par).expect("context");
        ctx_ref.set_eval_resident(false);
        let mut rng = StdRng::seed_from_u64(7);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let flat: Vec<f32> = (0..model_params).map(|i| (i as f32 * 0.01).sin()).collect();

        // "Before" row: the coefficient-domain reference pipeline, which
        // pays two polynomial products (each 2 forward + 1 inverse NTT
        // per prime) inside every encrypt instead of four forwards.
        let encrypt_coeff_ns = time_ns(iters, || {
            let cts = packing::encrypt_model(&ctx_ref, &pk, &flat, &mut rng).expect("encrypt");
            std::hint::black_box(cts);
        });
        samples.push(Sample {
            op: "encrypt_model_coeff".into(),
            threads,
            ns_per_op: encrypt_coeff_ns,
            backend: ntt_backend,
        });

        let encrypt_ns = time_ns(iters, || {
            let cts = packing::encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt");
            std::hint::black_box(cts);
        });
        samples.push(Sample {
            op: "encrypt_model".into(),
            threads,
            ns_per_op: encrypt_ns,
            backend: ntt_backend,
        });

        let encrypt_seeded_ns = time_ns(iters, || {
            let cts =
                packing::encrypt_model_symmetric(&ctx, &sk, &flat, &mut rng).expect("encrypt");
            std::hint::black_box(cts);
        });
        samples.push(Sample {
            op: "encrypt_model_seeded".into(),
            threads,
            ns_per_op: encrypt_seeded_ns,
            backend: ntt_backend,
        });

        let models: Vec<_> = (0..clients)
            .map(|_| packing::encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt"))
            .collect();
        let weights = vec![1.0 / clients as f64; clients];
        let aggregate_ns = time_ns(iters, || {
            let global =
                packing::homomorphic_weighted_average(&ctx, &models, &weights).expect("aggregate");
            std::hint::black_box(global);
        });
        samples.push(Sample {
            op: "aggregate".into(),
            threads,
            ns_per_op: aggregate_ns,
            backend: ntt_backend,
        });

        let global =
            packing::homomorphic_weighted_average(&ctx, &models, &weights).expect("aggregate");
        let decrypt_ns = time_ns(iters, || {
            let flat = packing::decrypt_model(&ctx, &sk, &global, model_params).expect("decrypt");
            std::hint::black_box(flat);
        });
        samples.push(Sample {
            op: "decrypt_model".into(),
            threads,
            ns_per_op: decrypt_ns,
            backend: ntt_backend,
        });
        eprintln!("  [threads = {threads}] done");
    }

    // Per-backend encrypt rows: the kernel is resolved once per process,
    // so the other backends are measured by child processes with
    // `RHYCHEE_NTT_BACKEND` overridden (no-op on scalar-only hosts).
    samples.extend(probe_other_backends(quick, ntt_backend));

    // Deterministic encrypt → aggregate → decrypt fingerprint: seeded
    // RNG and no timing loops interleaved, so two artifacts from the
    // same commit must agree on it no matter which NTT backend ran —
    // the CI matrix diffs this field across its legs.
    let fp_ctx =
        CkksContext::with_parallelism(params.clone(), Parallelism::Fixed(1)).expect("context");
    let mut fp_rng = StdRng::seed_from_u64(1234);
    let (fp_sk, fp_pk) = fp_ctx.generate_keys(&mut fp_rng);
    let fp_flat: Vec<f32> = (0..model_params).map(|i| (i as f32 * 0.01).sin()).collect();
    let fp_models: Vec<_> = (0..clients)
        .map(|_| packing::encrypt_model(&fp_ctx, &fp_pk, &fp_flat, &mut fp_rng).expect("encrypt"))
        .collect();
    let fp_weights = vec![1.0 / clients as f64; clients];
    let fp_global =
        packing::homomorphic_weighted_average(&fp_ctx, &fp_models, &fp_weights).expect("aggregate");
    let fp_dec =
        packing::decrypt_model(&fp_ctx, &fp_sk, &fp_global, model_params).expect("decrypt");
    let fingerprint = decrypt_fingerprint(&fp_dec);

    // Wire sizes are degree-independent: canonical vs seeded bytes for
    // one fresh full-level ciphertext, plus a whole-model upload.
    let size_ctx = CkksContext::new(params.clone()).expect("context");
    let levels = size_ctx.primes().len();
    let ct_bytes_canonical = size_ctx.serialized_len(levels);
    let ct_bytes_seeded = size_ctx.serialized_len_seeded(levels);
    let upload_canonical = packing::upload_bytes_canonical(&size_ctx, model_params);
    let upload_seeded = packing::upload_bytes_seeded(&size_ctx, model_params);

    let mut table = Table::new(vec!["op", "backend", "threads", "ns/op", "ms/op", "speedup vs 1"]);
    for s in &samples {
        let base = samples
            .iter()
            .find(|b| b.op == s.op && b.threads == 1 && b.backend == s.backend)
            .map_or(s.ns_per_op, |b| b.ns_per_op);
        let threads = if s.threads > cores {
            format!("{} (oversub)", s.threads)
        } else {
            s.threads.to_string()
        };
        table.row(vec![
            s.op.clone(),
            s.backend.into(),
            threads,
            format!("{:.0}", s.ns_per_op),
            format!("{:.3}", s.ns_per_op / 1e6),
            format!("{:.2}x", base / s.ns_per_op),
        ]);
    }
    table.print();

    let mut sizes = Table::new(vec!["format", "bytes/ct", "bytes/model upload", "vs canonical"]);
    sizes.row(vec![
        "canonical".into(),
        ct_bytes_canonical.to_string(),
        upload_canonical.to_string(),
        "1.00x".into(),
    ]);
    sizes.row(vec![
        "seeded".into(),
        ct_bytes_seeded.to_string(),
        upload_seeded.to_string(),
        format!("{:.2}x", upload_canonical as f64 / upload_seeded as f64),
    ]);
    sizes.print();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"machine_cores\": {cores},\n"));
    if let Some(w) = &warning {
        json.push_str(&format!("  \"warning\": \"{w}\",\n"));
    }
    json.push_str(&format!("  \"ntt_backend\": \"{ntt_backend}\",\n"));
    json.push_str(&format!("  \"decrypt_fingerprint\": \"{fingerprint:#018x}\",\n"));
    json.push_str(&format!("  \"ring_degree\": {},\n", params.n));
    json.push_str(&format!("  \"model_params\": {model_params},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"ct_bytes_canonical\": {ct_bytes_canonical},\n"));
    json.push_str(&format!("  \"ct_bytes_seeded\": {ct_bytes_seeded},\n"));
    json.push_str(&format!("  \"upload_bytes_canonical\": {upload_canonical},\n"));
    json.push_str(&format!("  \"upload_bytes_seeded\": {upload_seeded},\n"));
    json.push_str(&format!(
        "  \"upload_ratio_canonical_over_seeded\": {:.3},\n",
        upload_canonical as f64 / upload_seeded as f64
    ));
    // Headline before/after ratios at 1 thread: the coefficient-domain
    // reference encrypt vs the NTT-resident public-key and symmetric
    // seeded paths (the latter is what clients actually upload with).
    let at = |op: &str| samples.iter().find(|s| s.op == op && s.threads == 1).map(|s| s.ns_per_op);
    if let (Some(coeff), Some(res), Some(seeded)) =
        (at("encrypt_model_coeff"), at("encrypt_model"), at("encrypt_model_seeded"))
    {
        json.push_str(&format!("  \"encrypt_speedup_resident_vs_coeff\": {:.3},\n", coeff / res));
        json.push_str(&format!("  \"encrypt_speedup_seeded_vs_coeff\": {:.3},\n", coeff / seeded));
    }
    let (heap_peak, rss_peak) = rhychee_bench::peak_memory();
    json.push_str(&format!("  \"heap_peak_bytes\": {heap_peak},\n"));
    json.push_str(&format!("  \"rss_peak_bytes\": {rss_peak},\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \"ns_per_op\": {:.1}, \
             \"machine_cores\": {cores}, \"oversubscribed\": {}}}{comma}\n",
            s.op,
            s.backend,
            s.threads,
            s.ns_per_op,
            s.threads > cores
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fhe.json", &json).expect("write BENCH_fhe.json");
    println!("\nwrote BENCH_fhe.json ({} samples, {cores} host cores)", samples.len());
    emit_metrics_json("bench_fhe");
}
