//! Regenerates **Table II**: comparison with prior FHE-FL frameworks on
//! the MNIST workload.
//!
//! | system | model | HE scheme |
//! |---|---|---|
//! | PFMLP     | MLP (≈55 k params)   | Paillier (partial HE, 2048-bit) |
//! | xMK-CKKS  | LR (7,850 params)    | CKKS (single-key stand-in)      |
//! | Ours      | HDC D=2000 (20,000)  | CKKS-4                          |
//!
//! Accuracy comes from federated training on the synthetic MNIST
//! workload (10 clients); enc+dec latency is the per-round cost of
//! encrypting one local model and decrypting one global model at a
//! client. Paillier latency is measured on a 256-parameter sample and
//! scaled to the full model (full measurement would take ~30 min; the
//! per-parameter cost is constant).
//!
//! Paper shape: Ours wins every row — higher accuracy than both, ~1000×+
//! faster than PFMLP and several× faster than xMK-CKKS.

use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use rhychee_bench::{banner, format_seconds, Table};
use rhychee_core::{packing, FlConfig, Framework, NnFederation, NnModelKind, SgdConfig};
use rhychee_data::{DatasetKind, SyntheticConfig};
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::paillier::PaillierContext;
use rhychee_fhe::params::CkksParams;

const MLP_PARAMS: usize = 55_885; // 784-69-10 with biases
const LR_PARAMS: usize = 7_850;
const HDC_PARAMS: usize = 20_000;
const PAILLIER_SAMPLE: usize = 256;

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, rounds) = if quick { (1_000, 4) } else { (3_000, 10) };
    let data = SyntheticConfig {
        kind: DatasetKind::Mnist,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(17)
    .expect("dataset generation");
    let config = FlConfig::builder()
        .clients(10)
        .rounds(rounds)
        .hd_dim(2000)
        .seed(13)
        .build()
        .expect("valid config");

    // --- Accuracy: federated training of each model class. ---
    banner("Training the three systems (accuracy column)");
    let t0 = Instant::now();
    let mut hdc = Framework::hdc_plaintext(config.clone(), &data).expect("hdc");
    let hdc_acc = hdc.run().expect("run").final_accuracy;
    eprintln!("  HDC trained in {:.1?} (acc {hdc_acc:.4})", t0.elapsed());

    let sgd = SgdConfig { lr: 0.1, momentum: 0.9, batch_size: 32 };
    let mut mlp_cfg = config.clone();
    mlp_cfg.local_epochs = 2;
    let t0 = Instant::now();
    let mut mlp = NnFederation::new(&mlp_cfg, &data, NnModelKind::Mlp, sgd).expect("mlp");
    let mlp_acc = mlp.run().expect("run").final_accuracy;
    eprintln!("  MLP trained in {:.1?} (acc {mlp_acc:.4})", t0.elapsed());

    let t0 = Instant::now();
    let mut lr =
        NnFederation::new(&mlp_cfg, &data, NnModelKind::LogisticRegression, sgd).expect("lr");
    let lr_acc = lr.run().expect("run").final_accuracy;
    eprintln!("  LR trained in {:.1?} (acc {lr_acc:.4})", t0.elapsed());

    // --- Latency: per-client enc(model) + dec(model) per round. ---
    banner("Measuring enc/dec latency per client per round");
    let mut rng = StdRng::seed_from_u64(99);

    // Ours + xMK-CKKS stand-in: CKKS-4.
    let ctx = CkksContext::new(CkksParams::ckks4()).expect("params");
    let (sk, pk) = ctx.generate_keys(&mut rng);
    let ckks_encdec = |n_params: usize, rng: &mut StdRng| -> f64 {
        let model = vec![0.25f32; n_params];
        let t0 = Instant::now();
        let cts = packing::encrypt_model(&ctx, &pk, &model, rng).expect("encrypt");
        let enc = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = packing::decrypt_model(&ctx, &sk, &cts, n_params);
        enc + t0.elapsed().as_secs_f64()
    };
    let ours_latency = ckks_encdec(HDC_PARAMS, &mut rng);
    eprintln!("  Ours (HDC/CKKS-4, 5 cts): {}", format_seconds(ours_latency));
    let xmk_latency = ckks_encdec(LR_PARAMS, &mut rng);
    eprintln!("  xMK-CKKS stand-in (LR/CKKS-4, 2 cts): {}", format_seconds(xmk_latency));

    // PFMLP: Paillier-2048 per parameter, extrapolated.
    let t0 = Instant::now();
    let paillier = PaillierContext::generate(&mut rng, 2048).expect("keygen");
    eprintln!("  Paillier-2048 keygen: {:.1?}", t0.elapsed());
    let t0 = Instant::now();
    let cts: Vec<_> = (0..PAILLIER_SAMPLE).map(|_| paillier.encrypt_f64(0.25, &mut rng)).collect();
    let enc_sample = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for ct in &cts {
        let _ = paillier.decrypt_f64(ct);
    }
    let dec_sample = t0.elapsed().as_secs_f64();
    let per_param = (enc_sample + dec_sample) / PAILLIER_SAMPLE as f64;
    let pfmlp_latency = per_param * MLP_PARAMS as f64;
    eprintln!(
        "  Paillier: {} per parameter x {MLP_PARAMS} params (extrapolated from {PAILLIER_SAMPLE})",
        format_seconds(per_param)
    );

    // --- The table. ---
    banner("Table II: Comparison of Previous Works and Ours (MNIST)");
    let mut table = Table::new(vec!["", "PFMLP", "xMK-CKKS", "Ours"]);
    table.row(vec!["Model".into(), "MLP".into(), "LR".into(), "HDC".into()]);
    table.row(vec![
        "HE Scheme".into(),
        "Partial HE (Paillier)".into(),
        "CKKS (single-key stand-in)".into(),
        "CKKS".into(),
    ]);
    table.row(vec![
        "Parameters".into(),
        MLP_PARAMS.to_string(),
        LR_PARAMS.to_string(),
        HDC_PARAMS.to_string(),
    ]);
    table.row(vec![
        "Accuracy".into(),
        format!("{mlp_acc:.3}"),
        format!("{lr_acc:.3}"),
        format!("{hdc_acc:.3}"),
    ]);
    table.row(vec![
        "Enc/Dec Latency".into(),
        format_seconds(pfmlp_latency),
        format_seconds(xmk_latency),
        format_seconds(ours_latency),
    ]);
    table.print();

    banner("Paper claims (shape checks)");
    println!(
        "accuracy: Ours {hdc_acc:.3} vs MLP {mlp_acc:.3} vs LR {lr_acc:.3}  \
         (paper: 0.960 / 0.925 / 0.819 — ordering HDC >= MLP > LR)"
    );
    println!(
        "latency:  Ours {} vs PFMLP {} ({:.0}x faster; paper: ~9000x)",
        format_seconds(ours_latency),
        format_seconds(pfmlp_latency),
        pfmlp_latency / ours_latency
    );
    println!(
        "          Ours {} vs xMK-CKKS-model {} — the paper's 4.5x gap also \n\
         reflects tMK-CKKS's multi-key overhead, which a single-key run lacks;\n\
         the per-parameter advantage of packing fewer ciphertexts remains.",
        format_seconds(ours_latency),
        format_seconds(xmk_latency),
    );
    rhychee_bench::emit_metrics_json("table2_sota_comparison");
}
