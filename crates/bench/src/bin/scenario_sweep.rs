//! Scenario-engine headline: final global accuracy as a function of
//! Byzantine attack fraction, with and without server-side defenses
//! (DESIGN.md §13).
//!
//! Sweeps sign-flip attack fractions 0 / 10 / 20 / 30 % against an
//! undefended federation, median norm-bound clipping, and a
//! coordinate-wise trimmed mean, then replays one composed scenario
//! (sign-flip + churn + stragglers + threshold-CKKS recovery) twice to
//! prove bit-identical determinism.
//!
//! Everything written to **stdout is a pure function of the seed** — no
//! timestamps, no wall times (those go to stderr) — so CI can run this
//! binary twice and `cmp` the outputs byte for byte.
//!
//! Runtime: a couple of minutes on one core. Pass `--quick` for the CI
//! sweep (~15 s).

use std::time::Instant;

use rhychee_bench::{banner, Table};
use rhychee_core::FlConfig;
use rhychee_data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_scenario::{
    self as scenario, AttackKind, ChurnTrace, ClipBound, Defense, DeviceProfile, ScenarioReport,
    ScenarioSpec,
};

const FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

fn fl(clients: usize, rounds: usize, hd_dim: usize, seed: u64) -> FlConfig {
    FlConfig::builder()
        .clients(clients)
        .rounds(rounds)
        .hd_dim(hd_dim)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// Bit-exact digest of everything a scenario influences, for the
/// replay gate.
fn fingerprint(r: &ScenarioReport) -> Vec<u64> {
    let mut fp = vec![
        r.final_accuracy.to_bits(),
        r.attacks_injected,
        r.updates_clipped,
        r.clients_churned,
        r.stragglers_dropped,
        r.threshold_recoveries,
        r.recovery_failures,
        r.recovery_max_err.to_bits(),
    ];
    fp.extend(r.rounds.iter().map(|round| round.accuracy.to_bits()));
    fp.extend(r.rounds.iter().map(|round| round.participants as u64));
    fp
}

fn main() {
    rhychee_bench::init_telemetry();
    let quick = std::env::args().any(|a| a == "--quick");
    let (clients, rounds, hd_dim, samples) =
        if quick { (10, 3, 512, 1_200) } else { (20, 5, 1_000, 4_000) };
    let data: TrainTest = SyntheticConfig {
        kind: DatasetKind::Har,
        train_samples: samples,
        test_samples: samples / 4,
    }
    .generate(42)
    .expect("dataset generation");

    banner("Scenario sweep: accuracy vs sign-flip attack fraction (HAR)");
    println!("clients {clients}, rounds {rounds}, D {hd_dim}, seed 42, attack SignFlip x10\n");

    let run = |fraction: f64, defense: Defense| -> ScenarioReport {
        let mut spec = ScenarioSpec::new(fl(clients, rounds, hd_dim, 42)).with_defense(defense);
        if fraction > 0.0 {
            spec = spec.with_attack(AttackKind::SignFlip { scale: 10.0 }, fraction);
        }
        let t0 = Instant::now();
        let report = scenario::run(&spec, &data).expect("scenario run");
        eprintln!(
            "  [frac {fraction:.1} {defense:?}] acc {:.4} ({:.1?})",
            report.final_accuracy,
            t0.elapsed()
        );
        report
    };

    let mut table =
        Table::new(vec!["attack fraction", "undefended", "norm-clip (median)", "coord-trim 0.2"]);
    let mut curves: Vec<(f64, f64, f64, f64)> = Vec::new();
    for &fraction in &FRACTIONS {
        let undefended = run(fraction, Defense::None);
        let clipped = run(fraction, Defense::NormClip { bound: ClipBound::Median });
        let trimmed = run(fraction, Defense::CoordTrim { trim_ratio: 0.2 });
        table.row(vec![
            format!("{fraction:.1}"),
            format!("{:.4}", undefended.final_accuracy),
            format!("{:.4}", clipped.final_accuracy),
            format!("{:.4}", trimmed.final_accuracy),
        ]);
        curves.push((
            fraction,
            undefended.final_accuracy,
            clipped.final_accuracy,
            trimmed.final_accuracy,
        ));
    }
    table.print();

    // The ISSUE acceptance bar: at 20% attackers, clipping must recover
    // at least half the accuracy the attack destroyed.
    let benign = curves[0].1;
    let at_20 = curves.iter().find(|c| (c.0 - 0.2).abs() < 1e-9).expect("0.2 in sweep");
    let damage = benign - at_20.1;
    let residual = benign - at_20.2;
    println!(
        "\nat 20% attackers: benign {benign:.4}, undefended {:.4}, clipped {:.4}",
        at_20.1, at_20.2
    );
    println!(
        "clipping recovered {:.0}% of the damage (bar: >= 50%)  {}",
        if damage > 0.0 { 100.0 * (damage - residual) / damage } else { 100.0 },
        if residual <= damage / 2.0 { "OK" } else { "BELOW BAR" }
    );

    banner("Composed scenario: sign-flip + churn + stragglers + threshold recovery");
    let composed = || {
        let spec = ScenarioSpec::new(fl(clients, rounds, hd_dim, 42))
            .with_attack(AttackKind::SignFlip { scale: 10.0 }, 0.2)
            .with_defense(Defense::NormClip { bound: ClipBound::Median })
            .with_churn(ChurnTrace::new().depart(1, 3).rejoin(2, 3))
            .with_devices(DeviceProfile::linear(clients, 1.0, 3.0), 2.8, 0.1)
            .with_threshold(3);
        scenario::run(&spec, &data).expect("composed scenario")
    };
    let a = composed();
    let b = composed();
    println!("attackers:            {:?}", a.attackers);
    println!("attacks injected:     {}", a.attacks_injected);
    println!("updates clipped:      {}", a.updates_clipped);
    println!("clients churned:      {}", a.clients_churned);
    println!("stragglers dropped:   {}", a.stragglers_dropped);
    println!("threshold recoveries: {}", a.threshold_recoveries);
    println!("recovery max err:     {:.2e}", a.recovery_max_err);
    println!(
        "per-round participants: {:?}",
        a.rounds.iter().map(|r| r.participants).collect::<Vec<_>>()
    );
    println!("final accuracy:       {:.4}", a.final_accuracy);
    assert_eq!(fingerprint(&a), fingerprint(&b), "same seed must replay bit-identically");
    println!("\nreplayed twice from seed 42: bit-identical  OK");

    // No emit_metrics_json here on purpose: it records wall times, and
    // this binary's stdout doubles as CI's byte-for-byte replay gate.
}
