//! Criterion benches for HDC primitives: the paper's "lightweight
//! training" claim rests on encoding and class-vector updates being
//! orders of magnitude cheaper than CNN backpropagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};

use rhychee_hdc::encoding::{Encoder, RandomProjectionEncoder, RbfEncoder};
use rhychee_hdc::model::{EncodedDataset, HdcModel};
use rhychee_hdc::quantize::QuantizedModel;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    let mut rng = StdRng::seed_from_u64(1);
    for d in [1000usize, 2000, 4000] {
        let rbf = RbfEncoder::new(784, d, &mut rng);
        let rp = RandomProjectionEncoder::new(561, d, &mut rng);
        let img: Vec<f32> = (0..784).map(|i| (i % 255) as f32 / 255.0).collect();
        let feats: Vec<f32> = (0..561).map(|i| (i as f32 * 0.01).sin()).collect();
        group.bench_function(BenchmarkId::new("rbf_mnist", d), |b| b.iter(|| rbf.encode(&img)));
        group.bench_function(BenchmarkId::new("proj_har", d), |b| b.iter(|| rp.encode(&feats)));
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_model");
    let mut rng = StdRng::seed_from_u64(2);
    let d = 2000;
    let hvs: Vec<Vec<f32>> =
        (0..200).map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let labels: Vec<usize> = (0..200).map(|i| i % 10).collect();
    let data = EncodedDataset::new(hvs.clone(), labels);
    let mut trained = HdcModel::new(10, d);
    for _ in 0..2 {
        trained.train_epoch(&data, 1.0);
    }

    group.bench_function("train_epoch_200_samples_d2000", |b| {
        b.iter_batched(
            || HdcModel::new(10, d),
            |mut m| m.train_epoch(&data, 1.0),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("classify_d2000", |b| b.iter(|| trained.classify(&hvs[0])));
    group.bench_function("quantize_8bit_d2000", |b| {
        b.iter(|| QuantizedModel::quantize(&trained, 8))
    });
    group.bench_function("flatten_d2000", |b| b.iter(|| trained.flatten()));
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_training);
criterion_main!(benches);
