//! Criterion benches for the communication substrate: error-detection
//! throughput (the `L_CRC/Checksum` term of Eq. 3) and packetized
//! transfer cost at the paper's channel operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};

use rhychee_channel::crc::{crc32, internet_checksum, Detector};
use rhychee_channel::packet::{BitFlipChannel, PacketLink, PACKET_BITS};

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors");
    for size in [175usize, 1500, 65536] {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::new("crc32", size), |b| b.iter(|| crc32(&data)));
        group.bench_function(BenchmarkId::new("checksum16", size), |b| {
            b.iter(|| internet_checksum(&data))
        });
    }
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_transfer");
    group.sample_size(10);
    let payload: Vec<u8> = (0..175 * 100).map(|i| (i % 256) as u8).collect();
    let mut rng = StdRng::seed_from_u64(1);
    for (name, ber) in [("clean", 0.0f64), ("ber_1e-4", 1e-4), ("ber_1e-3", 1e-3)] {
        let link = PacketLink::new(BitFlipChannel::new(ber), Detector::Crc32, PACKET_BITS);
        group.bench_function(BenchmarkId::new("transfer_100pkt", name), |b| {
            b.iter(|| link.transfer(&payload, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_transfer);
criterion_main!(benches);
