//! Criterion benches for the FHE primitives behind Table II's latency
//! column and the paper's client-side cost claims.
//!
//! Covers: CKKS encrypt/decrypt/add/plaintext-multiply at the paper
//! parameter sets, the NTT kernel across ring degrees, LWE operations,
//! and Paillier encrypt/decrypt (the PFMLP baseline's bottleneck).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};

use rhychee_fhe::ckks::{ntt::NttTable, CkksContext};
use rhychee_fhe::lwe::LweContext;
use rhychee_fhe::paillier::PaillierContext;
use rhychee_fhe::params::{CkksParams, LweParams};

fn bench_ckks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckks");
    group.sample_size(10);
    for (name, params) in [("ckks3", CkksParams::ckks3()), ("ckks4", CkksParams::ckks4())] {
        let ctx = CkksContext::new(params).expect("params");
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| (i % 100) as f64 / 100.0).collect();
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let ct2 = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");

        group.bench_function(BenchmarkId::new("encrypt_full_ct", name), |b| {
            b.iter(|| ctx.encrypt(&pk, &values, &mut rng).expect("encrypt"))
        });
        group.bench_function(BenchmarkId::new("decrypt_full_ct", name), |b| {
            b.iter(|| ctx.decrypt(&sk, &ct))
        });
        group.bench_function(BenchmarkId::new("hom_add", name), |b| {
            b.iter(|| ctx.add(&ct, &ct2).expect("add"))
        });
        group.bench_function(BenchmarkId::new("mul_scalar", name), |b| {
            b.iter(|| ctx.mul_scalar(&ct, 0.1))
        });
        group
            .bench_function(BenchmarkId::new("serialize", name), |b| b.iter(|| ctx.serialize(&ct)));
    }
    group.finish();
}

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [12u32, 13, 15] {
        let n = 1usize << log_n;
        let q = rhychee_fhe::ckks::modarith::find_ntt_primes(50, 1, 2 * n as u64)[0];
        let table = NttTable::new(n, q);
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        group.bench_function(BenchmarkId::new("forward", n), |b| {
            b.iter_batched(
                || data.clone(),
                |mut d| table.forward(&mut d),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_lwe(c: &mut Criterion) {
    let mut group = c.benchmark_group("lwe");
    let ctx = LweContext::new(LweParams::tfhe1()).expect("params");
    let mut rng = StdRng::seed_from_u64(3);
    let sk = ctx.generate_key(&mut rng);
    let ct = ctx.encrypt(&sk, 3, &mut rng).expect("encrypt");
    let ct2 = ctx.encrypt(&sk, 5, &mut rng).expect("encrypt");
    group.bench_function("encrypt", |b| b.iter(|| ctx.encrypt(&sk, 3, &mut rng).expect("encrypt")));
    group.bench_function("decrypt", |b| b.iter(|| ctx.decrypt(&sk, &ct)));
    group.bench_function("hom_add", |b| b.iter(|| ctx.add(&ct, &ct2).expect("add")));
    group.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);
    // 1024-bit keys keep the bench fast; the 2048-bit production point is
    // measured by the table2 binary.
    let mut rng = StdRng::seed_from_u64(4);
    let ctx = PaillierContext::generate(&mut rng, 1024).expect("keygen");
    let ct = ctx.encrypt_u64(42, &mut rng);
    let ct2 = ctx.encrypt_u64(13, &mut rng);
    group.bench_function("encrypt_1024", |b| b.iter(|| ctx.encrypt_u64(42, &mut rng)));
    group.bench_function("decrypt_1024", |b| b.iter(|| ctx.decrypt(&ct)));
    group.bench_function("hom_add_1024", |b| b.iter(|| ctx.add(&ct, &ct2)));
    group.finish();
}

criterion_group!(benches, bench_ckks, bench_ntt, bench_lwe, bench_paillier);
criterion_main!(benches);
