//! Arbitrary-precision unsigned integer arithmetic for Rhychee-FL.
//!
//! This crate is the numeric substrate for the [Paillier] additively
//! homomorphic cryptosystem used as the PFMLP baseline in the Rhychee-FL
//! evaluation (Table II of the paper). It provides:
//!
//! * [`BigUint`] — a little-endian, 64-bit-limb unsigned big integer with
//!   full ring arithmetic (add, sub, mul, divrem, shifts, comparisons).
//! * [`modular`] — modular exponentiation, modular inverse (extended GCD)
//!   and a Montgomery multiplication context for fast `modpow`.
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation.
//!
//! The implementation favours clarity and testability over raw speed, but a
//! Montgomery ladder keeps 2048-bit exponentiations practical for the
//! Paillier benchmarks.
//!
//! # Examples
//!
//! ```
//! use rhychee_bigint::BigUint;
//!
//! let a = BigUint::from(12345u64);
//! let b = BigUint::from(67890u64);
//! assert_eq!(&a * &b, BigUint::from(12345u64 * 67890u64));
//! ```
//!
//! [Paillier]: https://en.wikipedia.org/wiki/Paillier_cryptosystem

mod biguint;
pub mod modular;
pub mod prime;

pub use biguint::BigUint;
pub use modular::{mod_inv, mod_pow, Montgomery};
pub use prime::{gen_prime, is_probable_prime};
