//! Modular arithmetic: exponentiation, inversion and Montgomery
//! multiplication over [`BigUint`] operands.
//!
//! # Examples
//!
//! ```
//! use rhychee_bigint::{mod_pow, BigUint};
//!
//! let base = BigUint::from(4u64);
//! let exp = BigUint::from(13u64);
//! let modulus = BigUint::from(497u64);
//! assert_eq!(mod_pow(&base, &exp, &modulus), BigUint::from(445u64));
//! ```

use crate::BigUint;

/// Computes `base^exp mod modulus`.
///
/// Uses Montgomery exponentiation when `modulus` is odd, and a plain
/// square-and-multiply ladder otherwise.
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "modulus must be non-zero");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if modulus.is_odd() {
        let mont = Montgomery::new(modulus.clone());
        return mont.pow(base, exp);
    }
    // Generic ladder for even moduli (rare in our use cases).
    let mut result = BigUint::one();
    let mut b = base.rem_of(modulus);
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = (&result * &b).rem_of(modulus);
        }
        b = (&b * &b).rem_of(modulus);
    }
    result
}

/// Computes the modular inverse of `a` modulo `m`, if it exists.
///
/// Returns `None` when `gcd(a, m) != 1`.
///
/// # Examples
///
/// ```
/// use rhychee_bigint::{mod_inv, BigUint};
///
/// let inv = mod_inv(&BigUint::from(3u64), &BigUint::from(11u64)).expect("coprime");
/// assert_eq!(inv, BigUint::from(4u64)); // 3 * 4 = 12 ≡ 1 (mod 11)
/// ```
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    assert!(!m.is_zero(), "modulus must be non-zero");
    if m.is_one() {
        return Some(BigUint::zero());
    }
    // Extended Euclid tracking only the coefficient of `a`, with signs
    // handled via a parallel sign flag (values stay non-negative).
    let mut r0 = m.clone();
    let mut r1 = a.rem_of(m);
    let mut t0 = (BigUint::zero(), false);
    let mut t1 = (BigUint::one(), false);
    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1);
        // t2 = t0 - q * t1
        let qt1 = &q * &t1.0;
        let t2 = signed_sub(&t0, &(qt1, t1.1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if !r0.is_one() {
        return None;
    }
    let (mag, neg) = t0;
    Some(if neg { m - &mag.rem_of(m) } else { mag.rem_of(m) })
}

/// Signed subtraction `(a - b)` on (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => {
            if a.0 >= b.0 {
                (&a.0 - &b.0, false)
            } else {
                (&b.0 - &a.0, true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (&a.0 + &b.0, false),
        // -a - b = -(a + b)
        (true, false) => (&a.0 + &b.0, true),
        // -a - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (&b.0 - &a.0, false)
            } else {
                (&a.0 - &b.0, true)
            }
        }
    }
}

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Precomputes `R = 2^(64·k)` residues so repeated multiplications (as in
/// [`Montgomery::pow`]) avoid per-step divisions. This is the workhorse
/// behind Paillier's 2048-bit exponentiations.
///
/// # Examples
///
/// ```
/// use rhychee_bigint::{BigUint, Montgomery};
///
/// let mont = Montgomery::new(BigUint::from(97u64));
/// let x = mont.pow(&BigUint::from(5u64), &BigUint::from(96u64));
/// assert!(x.is_one()); // Fermat: 5^96 ≡ 1 (mod 97)
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: BigUint,
    k: usize,
    n_prime: u64,
    r2: BigUint,
}

impl Montgomery {
    /// Creates a context for odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, one, or even.
    pub fn new(n: BigUint) -> Self {
        assert!(n.is_odd() && !n.is_one(), "Montgomery modulus must be odd and > 1");
        let k = n.limbs().len();
        let n0 = n.limbs()[0];
        // n' = -n^{-1} mod 2^64 via Newton iteration.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R^2 mod n, with R = 2^(64k).
        let r = BigUint::one() << (64 * k);
        let r2 = (&r * &r).rem_of(&n);
        Montgomery { n, k, n_prime, r2 }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery product: `REDC(a * b)` where inputs are in Montgomery form.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.k;
        let a_limbs = a.limbs();
        let b_limbs = b.limbs();
        let n_limbs = self.n.limbs();
        // CIOS: t has k+2 limbs.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a_limbs.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry: u128 = 0;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = b_limbs.get(j).copied().unwrap_or(0);
                let s = u128::from(*tj) + u128::from(ai) * u128::from(bj) + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = u128::from(t[k]) + carry;
            t[k] = s as u64;
            t[k + 1] = t[k + 1].wrapping_add((s >> 64) as u64);

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let s = u128::from(t[0]) + u128::from(m) * u128::from(n_limbs[0]);
            let mut carry: u128 = s >> 64;
            for j in 1..k {
                let s = u128::from(t[j]) + u128::from(m) * u128::from(n_limbs[j]) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = u128::from(t[k]) + carry;
            t[k - 1] = s as u64;
            let s2 = u128::from(t[k + 1]) + (s >> 64);
            t[k] = s2 as u64;
            t[k + 1] = (s2 >> 64) as u64;
        }
        t.truncate(k + 1);
        let mut result = BigUint::from_limbs(t);
        if result >= self.n {
            result -= &self.n;
        }
        result
    }

    /// Converts into Montgomery form: `a · R mod n`.
    fn mont_encode(&self, a: &BigUint) -> BigUint {
        self.mont_mul(&a.rem_of(&self.n), &self.r2)
    }

    /// Converts out of Montgomery form.
    fn mont_decode(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Computes `a * b mod n`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.mont_encode(a);
        let bm = self.mont_encode(b);
        self.mont_decode(&self.mont_mul(&am, &bm))
    }

    /// Computes `base^exp mod n` with a left-to-right binary ladder.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_of(&self.n);
        }
        let base_m = self.mont_encode(base);
        let mut acc = base_m.clone();
        for i in (0..exp.bits() - 1).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.mont_decode(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(
            mod_pow(&BigUint::from(4u64), &BigUint::from(13u64), &BigUint::from(497u64)),
            BigUint::from(445u64)
        );
        assert_eq!(
            mod_pow(&BigUint::from(2u64), &BigUint::from(10u64), &BigUint::from(1000u64)),
            BigUint::from(24u64)
        );
        // exp = 0
        assert_eq!(
            mod_pow(&BigUint::from(99u64), &BigUint::zero(), &BigUint::from(7u64)),
            BigUint::one()
        );
        // modulus = 1
        assert!(mod_pow(&BigUint::from(5u64), &BigUint::from(5u64), &BigUint::one()).is_zero());
    }

    #[test]
    fn mod_pow_even_modulus() {
        // 3^5 mod 64 = 243 mod 64 = 51
        assert_eq!(
            mod_pow(&BigUint::from(3u64), &BigUint::from(5u64), &BigUint::from(64u64)),
            BigUint::from(51u64)
        );
    }

    #[test]
    fn mod_pow_matches_naive_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let m = u64::from(rng.gen::<u32>() | 1); // odd modulus
            let b = u64::from(rng.gen::<u32>());
            let e = u64::from(rng.gen::<u16>());
            let expected = naive_pow(b, e, m);
            assert_eq!(
                mod_pow(&BigUint::from(b), &BigUint::from(e), &BigUint::from(m)),
                BigUint::from(expected)
            );
        }
    }

    fn naive_pow(b: u64, mut e: u64, m: u64) -> u64 {
        let mut acc: u128 = 1;
        let mut base = u128::from(b % m);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base % u128::from(m);
            }
            base = base * base % u128::from(m);
            e >>= 1;
        }
        acc as u64
    }

    #[test]
    fn mod_inv_small() {
        let inv = mod_inv(&BigUint::from(3u64), &BigUint::from(11u64)).expect("coprime");
        assert_eq!(inv, BigUint::from(4u64));
        assert!(mod_inv(&BigUint::from(4u64), &BigUint::from(8u64)).is_none());
        assert_eq!(mod_inv(&BigUint::from(5u64), &BigUint::one()), Some(BigUint::zero()));
    }

    #[test]
    fn mod_inv_random_verifies() {
        let mut rng = StdRng::seed_from_u64(17);
        let m = BigUint::random_bits(&mut rng, 256);
        for _ in 0..40 {
            let a = BigUint::random_below(&mut rng, &m);
            if let Some(inv) = mod_inv(&a, &m) {
                assert_eq!((&a * &inv).rem_of(&m), BigUint::one().rem_of(&m));
            } else {
                assert!(!a.gcd(&m).is_one());
            }
        }
    }

    #[test]
    fn montgomery_matches_plain_mul() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let mut n = BigUint::random_bits(&mut rng, 320);
            if n.is_even() {
                n += &BigUint::one();
            }
            let mont = Montgomery::new(n.clone());
            let a = BigUint::random_below(&mut rng, &n);
            let b = BigUint::random_below(&mut rng, &n);
            assert_eq!(mont.mul(&a, &b), (&a * &b).rem_of(&n));
        }
    }

    #[test]
    fn montgomery_pow_fermat() {
        // 2^(p-1) ≡ 1 mod p for prime p = 2^61 - 1.
        let p = BigUint::from((1u64 << 61) - 1);
        let mont = Montgomery::new(p.clone());
        let e = &p - &BigUint::one();
        assert!(mont.pow(&BigUint::from(2u64), &e).is_one());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn montgomery_rejects_even_modulus() {
        let _ = Montgomery::new(BigUint::from(10u64));
    }
}
