//! The [`BigUint`] type: an unsigned big integer stored as little-endian
//! 64-bit limbs, always normalized (no trailing zero limbs; zero is the
//! empty limb vector).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// Stored little-endian in 64-bit limbs. The representation is always
/// normalized: the most significant limb is non-zero, and zero is
/// represented by an empty limb vector.
///
/// # Examples
///
/// ```
/// use rhychee_bigint::BigUint;
///
/// let x = BigUint::from(10u64).pow(20);
/// assert_eq!(x.to_decimal(), "100000000000000000000");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Constructs from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Little-endian limb view of the value.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => 64 * (self.limbs.len() - 1) + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the number if needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes (no leading zeros; empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Samples a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> Self {
        assert!(!bound.is_zero(), "random_below bound must be non-zero");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) { u64::MAX } else { (1u64 << (bits % 64)) - 1 };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            if let Some(last) = v.last_mut() {
                *last &= top_mask;
            }
            let candidate = Self::from_limbs(v);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Samples a uniform value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0, "random_bits requires bits > 0");
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top = (bits - 1) % 64;
        let last = v.last_mut().expect("at least one limb");
        *last &= if top == 63 { u64::MAX } else { (1 << (top + 1)) - 1 };
        *last |= 1 << top;
        Self::from_limbs(v)
    }

    /// Raises `self` to the power `exp` (plain, non-modular).
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Quotient and remainder by a single 64-bit divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut rem: u128 = 0;
        let mut q = vec![0u64; self.limbs.len()];
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | u128::from(limb);
            q[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (Self::from_limbs(q), rem as u64)
    }

    /// Knuth Algorithm D long division for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("non-empty").leading_zeros() as usize;
        let u = self << shift;
        let v = divisor << shift;
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_lo = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two/three limbs.
            let num = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = num / u128::from(v_hi);
            let mut rhat = num % u128::from(v_hi);
            while qhat >= (1u128 << 64)
                || qhat * u128::from(v_lo) > ((rhat << 64) | u128::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += u128::from(v_hi);
                if rhat >= (1u128 << 64) {
                    break;
                }
            }

            // Multiply-and-subtract qhat * v from un[j..j+n+1].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(un[j + i]) - (p as u64 as i128) + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = i128::from(un[j + n]) - carry as i128 + borrow;
            un[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;
            if went_negative {
                // The estimate was one too large: add the divisor back.
                q[j] -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = u128::from(un[j + i]) + u128::from(vn[i]) + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        un.truncate(n);
        let rem = Self::from_limbs(un) >> shift;
        (Self::from_limbs(q), rem)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a >> a_tz;
        b = b >> b_tz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b -= &a;
            if b.is_zero() {
                return a << common;
            }
            let tz = b.trailing_zeros();
            b = b >> tz;
        }
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.div_rem(&g);
        &q * other
    }

    /// Number of trailing zero bits (0 for the value zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-digit character.
    pub fn from_decimal(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut acc = Self::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError)?;
            acc = acc.mul_u64(10);
            acc += &BigUint::from(u64::from(d));
        }
        Ok(acc)
    }

    /// Formats as a decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10);
            digits.push(char::from(b'0' + r as u8));
            cur = q;
        }
        digits.iter().rev().collect()
    }

    /// Multiplies by a single 64-bit value.
    pub fn mul_u64(&self, rhs: u64) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let p = u128::from(l) * u128::from(rhs) + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        out.push(carry as u64);
        Self::from_limbs(out)
    }

    /// `self mod m` convenience wrapper.
    pub fn rem_of(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }
}

/// Error returned by [`BigUint::from_decimal`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal big integer")
    }
}

impl std::error::Error for ParseBigUintError {}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from(u64::from(v))
    }
}

impl TryFrom<&BigUint> for u64 {
    type Error = ();

    fn try_from(v: &BigUint) -> Result<Self, Self::Error> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0]),
            _ => Err(()),
        }
    }
}

impl TryFrom<&BigUint> for u128 {
    type Error = ();

    fn try_from(v: &BigUint) -> Result<Self, Self::Error> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(u128::from(v.limbs[0])),
            2 => Ok(u128::from(v.limbs[0]) | (u128::from(v.limbs[1]) << 64)),
            _ => Err(()),
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = String::new();
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{l:x}"));
            } else {
                s.push_str(&format!("{l:016x}"));
            }
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        let mut carry: u128 = 0;
        let n = self.limbs.len().max(rhs.limbs.len());
        self.limbs.resize(n, 0);
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let s = u128::from(*limb) + u128::from(rhs.limbs.get(i).copied().unwrap_or(0)) + carry;
            *limb = s as u64;
            carry = s >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl SubAssign<&BigUint> for BigUint {
    /// # Panics
    ///
    /// Panics on underflow (`rhs > self`).
    fn sub_assign(&mut self, rhs: &BigUint) {
        assert!(*self >= *rhs, "BigUint subtraction underflow");
        let mut borrow: i128 = 0;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let d = i128::from(*limb) - i128::from(rhs.limbs.get(i).copied().unwrap_or(0)) + borrow;
            *limb = d as u64;
            borrow = d >> 64;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;

    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let p = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + carry;
                out[i + j] = p as u64;
                carry = p >> 64;
            }
            out[i + rhs.limbs.len()] = carry as u64;
        }
        BigUint::from_limbs(out)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;

    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(self, &rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(&self, &rhs)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Rem, rem);

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;

    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, shift: usize) -> BigUint {
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            for i in 0..out.len() {
                out[i] >>= bit_shift;
                if i + 1 < out.len() {
                    out[i] |= out[i + 1] << (64 - bit_shift);
                }
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;

    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 1]);
        assert_eq!(s.bits(), 65);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = BigUint::one();
        assert_eq!(&a - &b, BigUint::from(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u64);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0x1234_5678_9abc_def0u64;
        let b = 0xfedc_ba98_7654_3210u64;
        let prod = &BigUint::from(a) * &BigUint::from(b);
        assert_eq!(prod, BigUint::from(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn div_rem_small() {
        let a = BigUint::from(1_000_003u64);
        let (q, r) = a.div_rem(&BigUint::from(1000u64));
        assert_eq!(q, BigUint::from(1000u64));
        assert_eq!(r, BigUint::from(3u64));
    }

    #[test]
    fn div_rem_multi_limb_reconstructs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = BigUint::random_bits(&mut rng, 512);
            let b = BigUint::random_bits(&mut rng, 192);
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        }
    }

    #[test]
    fn div_rem_requires_add_back_case() {
        // Constructed to exercise the Algorithm D add-back branch.
        let a = BigUint::from_limbs(vec![0, 0, 1 << 63]);
        let b = BigUint::from_limbs(vec![1, 1 << 63]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn shifts_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BigUint::random_bits(&mut rng, 300);
        for s in [0usize, 1, 63, 64, 65, 130] {
            assert_eq!((&a << s) >> s, a);
        }
    }

    #[test]
    fn decimal_round_trip() {
        let s = "123456789012345678901234567890123456789";
        let v = BigUint::from_decimal(s).expect("parse");
        assert_eq!(v.to_decimal(), s);
        assert!(BigUint::from_decimal("").is_err());
        assert!(BigUint::from_decimal("12x").is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        for bits in [8usize, 64, 65, 256, 1000] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn gcd_lcm_basics() {
        let a = BigUint::from(48u64);
        let b = BigUint::from(36u64);
        assert_eq!(a.gcd(&b), BigUint::from(12u64));
        assert_eq!(a.lcm(&b), BigUint::from(144u64));
        assert_eq!(BigUint::zero().gcd(&a), a);
        assert_eq!(a.gcd(&BigUint::zero()), a);
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from(2u64).pow(10), BigUint::from(1024u64));
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
        assert_eq!(BigUint::from(10u64).pow(20).to_decimal(), "100000000000000000000");
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from(1000u64);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [1usize, 63, 64, 65, 1024] {
            assert_eq!(BigUint::random_bits(&mut rng, bits).bits(), bits);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let a = BigUint::from_limbs(vec![0, 1]);
        let b = BigUint::from(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", BigUint::from(0xdeadbeefu64)), "deadbeef");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        let big = BigUint::from_limbs(vec![0x1, 0xab]);
        assert_eq!(format!("{big:x}"), "ab0000000000000001");
    }

    #[test]
    fn bit_accessors() {
        let mut v = BigUint::zero();
        v.set_bit(70);
        assert!(v.bit(70));
        assert!(!v.bit(69));
        assert_eq!(v.bits(), 71);
        assert_eq!(v.trailing_zeros(), 70);
    }
}
