//! Probabilistic primality testing and random prime generation.
//!
//! Used by the Paillier key generator, which needs two independent
//! 1024-bit primes per keypair.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_bigint::{gen_prime, is_probable_prime};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let p = gen_prime(&mut rng, 128);
//! assert_eq!(p.bits(), 128);
//! assert!(is_probable_prime(&p, 32));
//! ```

use rand::Rng;

use crate::{mod_pow, BigUint};

/// Small primes used to pre-screen candidates before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Deterministic small-prime trial division screens obvious composites
/// first. With 32 rounds the error probability is below 4^-32.
///
/// # Examples
///
/// ```
/// use rhychee_bigint::{is_probable_prime, BigUint};
///
/// assert!(is_probable_prime(&BigUint::from(2u64.pow(61) - 1), 16));
/// assert!(!is_probable_prime(&BigUint::from(561u64), 16)); // Carmichael number
/// ```
pub fn is_probable_prime(n: &BigUint, rounds: u32) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from(2u64) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from(p);
        if n == &pb {
            return true;
        }
        if n.rem_of(&pb).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n - &BigUint::one();
    let s = n_minus_1.trailing_zeros();
    let d = &n_minus_1 >> s;

    // Fixed witness schedule: first `rounds` small primes as bases gives a
    // deterministic test for all n < 3.3e24 and a strong probabilistic
    // test beyond; bases are reduced mod n.
    let mut witness_rng = WitnessSequence::new();
    'witness: for _ in 0..rounds {
        let a = witness_rng.next_base(n);
        let mut x = mod_pow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = mod_pow(&x, &BigUint::from(2u64), n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Deterministic-then-pseudorandom witness base sequence for Miller–Rabin.
struct WitnessSequence {
    idx: usize,
    state: u64,
}

impl WitnessSequence {
    fn new() -> Self {
        WitnessSequence { idx: 0, state: 0x9e37_79b9_7f4a_7c15 }
    }

    fn next_base(&mut self, n: &BigUint) -> BigUint {
        let base = if self.idx < SMALL_PRIMES.len() {
            SMALL_PRIMES[self.idx]
        } else {
            // xorshift64* beyond the fixed schedule
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) | 2
        };
        self.idx += 1;
        let b = BigUint::from(base).rem_of(n);
        if b.is_zero() || b.is_one() {
            BigUint::from(2u64)
        } else {
            b
        }
    }
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The returned value has both the top bit and the bit below it set (so
/// products of two such primes have exactly `2·bits` bits, as Paillier
/// expects) and passes 32 Miller–Rabin rounds.
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime size too small: {bits} bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force odd and set the second-highest bit.
        if candidate.is_even() {
            candidate += &BigUint::one();
        }
        candidate.set_bit(bits - 2);
        if candidate.bits() > bits {
            continue;
        }
        // Sieve forward in steps of 2 for a small window before resampling.
        let two = BigUint::from(2u64);
        for _ in 0..64 {
            if candidate.bits() != bits {
                break;
            }
            if is_probable_prime(&candidate, 32) {
                return candidate;
            }
            candidate += &two;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn small_primes_detected() {
        for p in [2u64, 3, 5, 7, 11, 13, 97, 211, 65537] {
            assert!(is_probable_prime(&BigUint::from(p), 16), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for c in [0u64, 1, 4, 6, 9, 15, 21, 221, 65535] {
            assert!(!is_probable_prime(&BigUint::from(c), 16), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes that fool the plain Fermat test.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_probable_prime(&BigUint::from(c), 16), "{c} is Carmichael");
        }
    }

    #[test]
    fn mersenne_primes_accepted() {
        for e in [13u32, 17, 19, 31, 61] {
            let m = (BigUint::from(2u64).pow(e)) - &BigUint::one();
            assert!(is_probable_prime(&m, 16), "2^{e}-1 should be prime");
        }
        // 2^11 - 1 = 2047 = 23 * 89 is composite.
        let m11 = BigUint::from(2047u64);
        assert!(!is_probable_prime(&m11, 16));
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(99);
        for bits in [64usize, 128, 256] {
            let p = gen_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
            assert!(p.bit(bits - 2), "second-highest bit set");
            assert!(is_probable_prime(&p, 32));
        }
    }

    #[test]
    fn gen_prime_product_has_double_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = gen_prime(&mut rng, 96);
        let q = gen_prime(&mut rng, 96);
        assert_eq!((&p * &q).bits(), 192);
    }

    #[test]
    fn distinct_primes_from_one_rng() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = gen_prime(&mut rng, 80);
        let q = gen_prime(&mut rng, 80);
        assert_ne!(p, q);
    }
}
