//! Property-based tests for the big-integer ring axioms and the
//! equivalence of Montgomery and schoolbook modular arithmetic.

use proptest::prelude::*;
use rhychee_bigint::{mod_inv, mod_pow, BigUint, Montgomery};

/// Strategy producing BigUints of up to ~256 bits from raw limb vectors.
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(BigUint::from_limbs)
}

/// Strategy producing non-zero BigUints.
fn arb_nonzero() -> impl Strategy<Value = BigUint> {
    arb_biguint().prop_map(|v| if v.is_zero() { BigUint::one() } else { v })
}

proptest! {
    #[test]
    fn addition_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn addition_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn multiplication_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn multiplication_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributive_law(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_then_sub_round_trips(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_biguint(), b in arb_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_left_is_mul_by_power_of_two(a in arb_biguint(), s in 0usize..130) {
        let pow2 = BigUint::one() << s;
        prop_assert_eq!(&a << s, &a * &pow2);
    }

    #[test]
    fn decimal_round_trip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn bytes_round_trip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero(), b in arb_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem_of(&g).is_zero());
        prop_assert!(b.rem_of(&g).is_zero());
    }

    #[test]
    fn montgomery_mul_matches_schoolbook(
        a in arb_biguint(),
        b in arb_biguint(),
        m in arb_nonzero(),
    ) {
        // Force odd modulus > 1 for Montgomery.
        let m = if m.is_even() { &m + &BigUint::one() } else { m };
        let m = if m.is_one() { BigUint::from(3u64) } else { m };
        let mont = Montgomery::new(m.clone());
        prop_assert_eq!(mont.mul(&a, &b), (&a * &b).rem_of(&m));
    }

    #[test]
    fn mod_pow_multiplicative_in_exponent(
        base in arb_biguint(),
        e1 in 0u64..64,
        e2 in 0u64..64,
        m in arb_nonzero(),
    ) {
        let m = if m.is_one() { BigUint::from(2u64) } else { m };
        // base^(e1+e2) = base^e1 * base^e2 (mod m)
        let lhs = mod_pow(&base, &BigUint::from(e1 + e2), &m);
        let rhs = (mod_pow(&base, &BigUint::from(e1), &m)
            * mod_pow(&base, &BigUint::from(e2), &m))
        .rem_of(&m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inv_verifies_when_exists(a in arb_nonzero(), m in arb_nonzero()) {
        let m = if m.is_one() { BigUint::from(5u64) } else { m };
        match mod_inv(&a, &m) {
            Some(inv) => prop_assert_eq!((&a * &inv).rem_of(&m), BigUint::one()),
            None => prop_assert!(!a.gcd(&m).is_one()),
        }
    }

    #[test]
    fn comparison_agrees_with_subtraction(a in arb_biguint(), b in arb_biguint()) {
        if a >= b {
            let d = &a - &b;
            prop_assert_eq!(&b + &d, a);
        } else {
            let d = &b - &a;
            prop_assert!(!d.is_zero());
        }
    }
}
