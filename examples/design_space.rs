//! Design-space exploration (paper §IV-B): pick the HDC dimension and
//! FHE parameter set that minimize communication subject to an accuracy
//! floor.
//!
//! Sweeps D over {500, 1000, 2000}, measures federated accuracy on the
//! HAR workload, evaluates the Table I communication formulas for every
//! Table III parameter set, and prints the Pareto choice.
//!
//! Run with:
//! ```text
//! cargo run --release --example design_space
//! ```

use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::ParamSet;

const ACCURACY_FLOOR: f64 = 0.92; // the paper's HAR bar

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 1_200, test_samples: 400 }
        .generate(8)?;
    let classes = data.train.num_classes() as u64;

    println!("accuracy floor: {ACCURACY_FLOOR} (paper: HAR >= 92%)\n");
    let mut best: Option<(usize, String, u64, f64)> = None;

    for d in [500usize, 1_000, 2_000] {
        let config = FlConfig::builder().clients(10).rounds(6).hd_dim(d).seed(15).build()?;
        let mut federation = Framework::hdc_plaintext(config, &data)?;
        let accuracy = federation.run()?.final_accuracy;
        let params = d as u64 * classes;
        println!("D = {d:>5}: accuracy {accuracy:.4}, {params} trainable parameters");
        if accuracy < ACCURACY_FLOOR {
            println!("         below the floor — skipping comm evaluation");
            continue;
        }
        for (name, set) in ParamSet::table3() {
            let bits = set.comm_bits(params);
            println!("         {name}: {bits:>12} bits per upload");
            let better = best.as_ref().is_none_or(|(_, _, b, _)| bits < *b);
            if better {
                best = Some((d, name.to_string(), bits, accuracy));
            }
        }
    }

    match best {
        Some((d, set, bits, acc)) => println!(
            "\nPareto choice: D = {d} with {set} -> {bits} bits/upload at {acc:.4} accuracy\n\
             (paper's conclusion: the smallest adequate D with CKKS-4 minimizes cost)"
        ),
        None => println!("\nno configuration met the accuracy floor — widen the sweep"),
    }
    Ok(())
}
