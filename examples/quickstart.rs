//! Quickstart: privacy-preserving federated learning in a few lines.
//!
//! Ten clients collaboratively train an HDC classifier on a synthetic
//! MNIST-like dataset. Local models are CKKS-encrypted before upload;
//! the server averages them homomorphically (it never sees a plaintext
//! model) and returns the encrypted global model.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset. (Synthetic MNIST stand-in: 10 classes, 28x28 images.)
    let data =
        SyntheticConfig { kind: DatasetKind::Mnist, train_samples: 1_500, test_samples: 400 }
            .generate(42)?;

    // 2. A federation: 10 clients, non-IID shards (Dirichlet alpha = 0.5),
    //    HDC dimension 1000.
    let config = FlConfig::builder().clients(10).rounds(5).hd_dim(1000).seed(42).build()?;

    // 3. The encrypted pipeline with the paper's most communication-
    //    efficient parameter set (CKKS-4: N = 8192, log Q = 61).
    let mut federation = Framework::hdc_encrypted(config, &data, CkksParams::ckks4())?;
    println!(
        "model: {} parameters -> {} bits per encrypted upload",
        federation.num_parameters(),
        federation.upload_bits_per_round()
    );

    // 4. Train.
    let report = federation.run()?;
    for round in &report.rounds {
        println!(
            "round {}: accuracy {:.4}  (train {:?}, encrypt {:?}, aggregate {:?}, decrypt {:?})",
            round.round + 1,
            round.accuracy,
            round.train_time,
            round.encrypt_time,
            round.aggregate_time,
            round.decrypt_time,
        );
    }
    println!("final accuracy: {:.4}", report.final_accuracy);
    if let Some(r) = report.rounds_to_accuracy(0.90) {
        println!("reached 90% accuracy in {r} rounds (paper: within 5)");
    }
    Ok(())
}
