//! Secure aggregation from the server's perspective.
//!
//! Demonstrates the raw FHE workflow of paper §IV-A without the FL
//! training loop: clients share a CKKS key, encrypt their model vectors
//! with maximum slot packing, and the server computes
//! `HomMul(Σ Enc(LMᵢ), 1/P)` — Eq. 2 — touching only ciphertexts.
//!
//! Also shows what an attacker (or honest-but-curious server) sees: the
//! serialized ciphertext bytes carry no usable structure.
//!
//! Run with:
//! ```text
//! cargo run --release --example secure_aggregation
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rhychee_fl::core::packing;
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::params::CkksParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Key-sharing phase (paper §IV-A): clients agree on parameters
    // and a shared secret key; the server receives only the public key.
    let ctx = CkksContext::new(CkksParams::ckks4())?;
    let mut rng = StdRng::seed_from_u64(7);
    let (client_sk, server_pk) = ctx.generate_keys(&mut rng);
    println!(
        "CKKS-4: N = {}, log Q = {}, {} slots per ciphertext",
        ctx.params().n,
        ctx.params().log_q(),
        ctx.slot_count()
    );

    // --- Each client has a local model (here: 20,000 parameters, the
    // D = 2000 x L = 10 HDC operating point).
    let clients = 5;
    let num_params = 20_000;
    let local_models: Vec<Vec<f32>> = (0..clients)
        .map(|c| (0..num_params).map(|i| ((c * num_params + i) as f32 * 0.001).sin()).collect())
        .collect();

    // --- Upload: encrypt with maximum packing.
    let mut uploads = Vec::new();
    for (c, model) in local_models.iter().enumerate() {
        let cts = packing::encrypt_model(&ctx, &server_pk, model, &mut rng)?;
        let bytes: usize = cts.iter().map(|ct| ctx.serialize(ct).len()).sum();
        println!(
            "client {c}: {} params -> {} ciphertexts, {} bytes on the wire",
            model.len(),
            cts.len(),
            bytes
        );
        uploads.push(cts);
    }

    // --- What the server sees: high-entropy bytes, nothing else.
    let sample = ctx.serialize(&uploads[0][0]);
    let histogram = byte_entropy(&sample);
    println!("server-side view of one ciphertext: {} bytes, byte entropy {histogram:.3} bits (8.0 = uniform)", sample.len());

    // --- Homomorphic FedAvg (Eq. 2). No secret key involved.
    let global_cts = packing::homomorphic_average(&ctx, &uploads)?;
    println!("server aggregated {clients} encrypted models into {} ciphertexts", global_cts.len());

    // --- Download: a client decrypts the global model.
    let global = packing::decrypt_model(&ctx, &client_sk, &global_cts, num_params)?;
    let expected: Vec<f32> = (0..num_params)
        .map(|i| local_models.iter().map(|m| m[i]).sum::<f32>() / clients as f32)
        .collect();
    let max_err = global.iter().zip(&expected).map(|(g, e)| (g - e).abs()).fold(0.0f32, f32::max);
    println!("client decrypted the averaged model; max error vs plaintext average: {max_err:.2e}");
    assert!(max_err < 1e-2, "homomorphic average must match the plaintext average");
    Ok(())
}

/// Shannon entropy of the byte distribution, in bits.
fn byte_entropy(bytes: &[u8]) -> f64 {
    let mut counts = [0usize; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}
