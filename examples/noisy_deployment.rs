//! Federated learning over a lossy 5G link (paper §IV-C / §V-E).
//!
//! Every encrypted model crosses a bit-flipping channel in 1400-bit
//! packets. With CRC-32 detect-and-retransmit the run converges exactly
//! like a clean deployment; the example also prints the analytical
//! failure model's predictions for the same operating point.
//!
//! Run with:
//! ```text
//! cargo run --release --example noisy_deployment
//! ```

use rhychee_fl::channel::failure::{seconds_to_days, ChannelModel};
use rhychee_fl::core::{FlConfig, NoisyChannelConfig, NoisyFederation};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 900, test_samples: 300 }
        .generate(3)?;
    let config = FlConfig::builder().clients(4).rounds(4).hd_dim(512).seed(3).build()?;

    // BER 1e-3 — the paper's harsh operating point.
    let channel = NoisyChannelConfig::default();
    let mut federation = NoisyFederation::new(config, &data, CkksParams::ckks4(), channel)?;
    let (report, stats) = federation.run()?;

    println!("accuracy by round:");
    for r in &report.rounds {
        println!("  round {}: {:.4}", r.round + 1, r.accuracy);
    }
    println!(
        "\nchannel: {} packets, {} transmissions ({:.2}x retransmission factor), \
         {} undetected errors, {} dropped ciphertexts",
        stats.packets,
        stats.transmissions,
        stats.transmissions as f64 / stats.packets as f64,
        stats.undetected_errors,
        stats.dropped_ciphertexts,
    );

    // The analytical model for the same channel (paper §IV-C).
    let model = ChannelModel::default();
    println!("\nanalytical model at BER {}:", model.ber);
    println!(
        "  retransmission factor N_re = {:.2} (measured above: {:.2})",
        model.expected_transmissions_per_packet(),
        stats.transmissions as f64 / stats.packets as f64
    );
    let bits = 5 * 2 * 8192 * 61u64; // 20k-parameter HDC model at CKKS-4
    println!(
        "  expected rounds to first undetected error (10 clients): {:.0}",
        model.expected_rounds_to_failure(10, bits)
    );
    println!(
        "  expected time to failure at a 75 s round period: {:.0} days",
        seconds_to_days(model.expected_time_to_failure_fixed_period(10, bits, 75.0))
    );
    println!("  -> convergence (a handful of rounds) happens long before failure.");
    Ok(())
}
