//! A real networked federation over loopback TCP.
//!
//! Spawns one [`FlServer`] and five [`FlClient`] threads, runs three
//! encrypted FedAvg rounds of the paper's pipeline (HDC models packed
//! into CKKS ciphertexts, homomorphic aggregation server-side), and
//! prints per-round accuracy plus the traffic each endpoint *measured*
//! on the wire — next to what the paper's analytical model predicts.
//!
//! The server never holds a decryption key: clients derive the shared
//! CKKS key pair from the run seed and decrypt each broadcast locally.
//!
//! Run with:
//! ```text
//! cargo run --release --example networked_fl
//! ```
//!
//! Pass `--obs [ADDR]` (default `127.0.0.1:9090`) to start the live
//! observability plane alongside the server; the scrape URL is printed
//! at startup and serves `/metrics`, `/healthz` and `/trace.json` while
//! the federation runs.

use std::thread;

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    ClientConfig, ClientPipeline, FlClient, FlServer, ServerConfig, ServerPipeline,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let obs_addr: Option<String> = args.iter().position(|a| a == "--obs").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:9090".to_owned())
    });

    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 360, test_samples: 120 }
        .generate(77)?;
    let fl = FlConfig::builder().clients(5).rounds(3).hd_dim(256).seed(7).build()?;
    let params = CkksParams::toy();

    // Every participant derives the same shards and key material from
    // the run config — exactly what the in-process Framework does.
    let FedSetup { shards, test, classes } = round::prepare(&fl, &data)?;
    let num_params = classes * fl.hd_dim;
    println!(
        "federation: {} clients, {} rounds, {} parameters, CKKS N = {}",
        fl.clients, fl.rounds, num_params, params.n
    );

    let mut server_config =
        ServerConfig::builder().clients(fl.clients).rounds(fl.rounds).model_params(num_params);
    if let Some(obs) = &obs_addr {
        server_config = server_config.obs_addr(obs.clone());
    }
    let server = FlServer::bind(
        "127.0.0.1:0",
        server_config.build()?,
        ServerPipeline::Ckks(params.clone()),
    )?;
    let addr = server.local_addr()?;
    println!("server: listening on {addr}");
    if let Some(obs) = server.obs_addr() {
        println!("observability: curl http://{obs}/metrics  (also /healthz, /trace.json)");
    }
    let server = thread::spawn(move || server.run());

    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, &fl);
        // Client 0 doubles as the evaluator for per-round accuracy.
        let eval = if id == 0 { Some(test.clone()) } else { None };
        let client = FlClient::new(
            ClientConfig::new(addr),
            fl.clone(),
            local,
            classes,
            eval,
            ClientPipeline::Ckks(params.clone()),
        )?;
        joins.push(thread::spawn(move || client.run()));
    }

    let mut reports = Vec::new();
    for join in joins {
        reports.push(join.join().expect("client thread")?);
    }
    let server = server.join().expect("server thread")?;

    println!("\nper-round accuracy of the decrypted global model (client 0's eval split):");
    for (round, acc) in &reports[0].accuracies {
        let sr = &server.rounds[*round];
        println!(
            "  round {round}: accuracy {:.3}  ({} of {} updates, {:.1} ms homomorphic aggregation)",
            acc,
            sr.received,
            fl.clients,
            sr.aggregate_time.as_secs_f64() * 1e3
        );
    }

    // Measured traffic vs. the paper's analytical communication model.
    let fw = Framework::hdc_encrypted(fl.clone(), &data, params)?;
    let modeled_upload = fl.rounds as u64 * fw.upload_bits_per_round() / 8;
    println!("\nwire traffic (measured on the sockets, not modeled):");
    for r in &reports {
        println!(
            "  client {}: tx {:>8} B  rx {:>8} B  (analytical upload: {modeled_upload} B)",
            r.client_id, r.bytes_tx, r.bytes_rx
        );
    }
    println!(
        "  server:   tx {:>8} B  rx {:>8} B  dropped {}",
        server.bytes_tx, server.bytes_rx, server.dropped_clients
    );
    assert!(server.final_plain_model.is_none(), "the server must never see plaintext");
    println!("\nserver held ciphertexts only: no decryption key, no plaintext model.");
    Ok(())
}
