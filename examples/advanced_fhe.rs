//! Advanced FHE features beyond the paper's aggregation pipeline:
//!
//! 1. **Threshold CKKS** — federated aggregation where *no client holds
//!    the full secret key* (the xMK-CKKS architecture class): joint key
//!    generation, encrypted FedAvg, distributed decryption.
//! 2. **Encrypted similarity** — a CKKS ct×ct dot product via
//!    relinearized multiplication and rotation-based slot summation.
//! 3. **TFHE programmable bootstrapping** — an exact non-linear LUT over
//!    an encrypted aggregate (the §IV-B2 TFHE use-case).
//!
//! Run with:
//! ```text
//! cargo run --release --example advanced_fhe
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rhychee_fl::fhe::ckks::threshold::ThresholdGroup;
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::lwe::LweContext;
use rhychee_fl::fhe::params::{CkksParams, LweParams};
use rhychee_fl::fhe::tfhe_boot::{BootstrapContext, BootstrapParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);

    // --- 1. Threshold aggregation: 3 clients, no shared secret key. ---
    println!("== threshold CKKS (no single point of decryption) ==");
    let ctx = CkksContext::new(CkksParams::toy())?;
    let group = ThresholdGroup::generate(&ctx, 3, &mut rng);
    let updates = [[0.9, 0.1], [1.1, -0.1], [1.0, 0.3]];
    let mut acc = ctx.encrypt(group.public_key(), &updates[0], &mut rng)?;
    for u in &updates[1..] {
        let ct = ctx.encrypt(group.public_key(), u, &mut rng)?;
        ctx.add_assign(&mut acc, &ct)?;
    }
    let avg = ctx.mul_scalar(&acc, 1.0 / 3.0);
    let partials: Vec<_> = (0..3).map(|i| group.partial_decrypt(&ctx, i, &avg, &mut rng)).collect();
    let global = ThresholdGroup::combine(&ctx, &avg, &partials);
    println!(
        "   jointly decrypted average: [{:.3}, {:.3}] (expected [1.0, 0.1])",
        global[0], global[1]
    );

    // --- 2. Encrypted dot product (similarity under encryption). ---
    println!("== encrypted dot product via mul + rotations ==");
    let params = CkksParams { n: 512, prime_bits: vec![50, 40, 40], scale_bits: 30, sigma: 3.2 };
    let ctx = CkksContext::new(params)?;
    let (sk, pk) = ctx.generate_keys(&mut rng);
    let rk = ctx.generate_relin_key(&sk, &mut rng);
    let half = ctx.slot_count();
    let keys: Vec<_> = std::iter::successors(Some(1usize), |&s| Some(s * 2))
        .take_while(|&s| s < half)
        .map(|s| ctx.generate_galois_key(&sk, s, &mut rng))
        .collect();
    let x: Vec<f64> = (0..half).map(|i| ((i % 13) as f64 / 13.0) - 0.5).collect();
    let y: Vec<f64> = (0..half).map(|i| ((i % 7) as f64 / 7.0) - 0.5).collect();
    let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    let cx = ctx.encrypt(&pk, &x, &mut rng)?;
    let cy = ctx.encrypt(&pk, &y, &mut rng)?;
    let dot_ct = ctx.rescale(&ctx.sum_slots(&ctx.mul(&cx, &cy, &rk)?, &keys)?)?;
    let dot = ctx.decrypt(&sk, &dot_ct)[0];
    println!("   <x, y> under encryption: {dot:.3} (plaintext: {expected:.3})");

    // --- 3. TFHE bootstrap: exact LUT on an encrypted sum. ---
    println!("== TFHE programmable bootstrap (exact non-linear LUT) ==");
    let bparams = BootstrapParams {
        lwe: LweParams { dimension: 64, log_q: 9, plaintext_modulus: 8, sigma_int: 0.4 },
        ring_degree: 256,
        ring_modulus_bits: 27,
        gadget_log_base: 9,
        gadget_levels: 3,
        ks_log_base: 7,
        ks_levels: 4,
        rlwe_sigma: 3.2,
    };
    let lwe = LweContext::new(bparams.lwe)?;
    let lwe_sk = lwe.generate_key(&mut rng);
    let boot = BootstrapContext::generate(&bparams, &lwe, &lwe_sk, &mut rng)?;
    // Sum three encrypted votes, then threshold at >= 2 — a non-linear
    // decision no purely additive scheme can make.
    let votes = [1u64, 0, 1];
    let mut tally = lwe.encrypt(&lwe_sk, votes[0], &mut rng)?;
    for &v in &votes[1..] {
        let ct = lwe.encrypt(&lwe_sk, v, &mut rng)?;
        lwe.add_assign(&mut tally, &ct)?;
    }
    let majority: Vec<u64> = (0..8).map(|s| u64::from(s >= 2)).collect();
    let decision = boot.bootstrap(&tally, &majority)?;
    println!(
        "   majority({votes:?}) = {} (decrypted from a bootstrapped ciphertext)",
        lwe.decrypt(&lwe_sk, &decision)
    );
    Ok(())
}
